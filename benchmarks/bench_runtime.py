"""Experiment — governance overhead of the resilient runtime.

The :mod:`repro.runtime` layer threads a :class:`~repro.runtime.Budget`
through every solver: each search node, applied chase step, and
materialized fact pays one charge (a counter increment, a cap
comparison, and — every ``check_interval`` charges — a deadline /
cancellation check).  This bench measures what that costs on the
tractable workload of ``bench_tractable.py``:

* **ungoverned**: ``solve`` with no budget (the hot path skips charging
  entirely);
* **governed**: the same solves under a generous budget with a far-away
  deadline and a token, so every charge takes the full instrumented
  path but nothing ever exhausts.

Target: the governed best-of-N time stays within a few percent of
ungoverned on the size-aggregated total — the assertion allows 15% to
keep CI machines with noisy timers green, while the printed table
records the actual ratio (typically < 5%).
"""

from __future__ import annotations

import time

from repro import Budget, CancellationToken, solve
from repro.workloads import generate_genomics_data, genomics_setting


def test_budget_overhead(benchmark, table):
    """Governed vs ungoverned solve time on the genomics LAV workload."""
    setting = genomics_setting()
    sizes = [20, 40, 80]
    data = {n: generate_genomics_data(proteins=n, seed=7) for n in sizes}
    repeats = 7

    def governed_budget() -> Budget:
        return Budget(
            wall_time_s=3600.0,
            node_cap=10**9,
            chase_step_cap=10**9,
            fact_cap=10**9,
            token=CancellationToken(),
        )

    def run():
        rows = []
        total_plain = 0.0
        total_governed = 0.0
        for n in sizes:
            source, target = data[n]
            plain: list[float] = []
            governed: list[float] = []
            for _ in range(repeats):
                started = time.perf_counter()
                result = solve(setting, source, target)
                plain.append(time.perf_counter() - started)
                assert result.exists and result.decided

                started = time.perf_counter()
                result = solve(setting, source, target, budget=governed_budget())
                governed.append(time.perf_counter() - started)
                assert result.exists and result.decided
            # Best-of-N isolates the instrumentation cost from scheduler
            # noise: both paths run identical work modulo the charges.
            base = min(plain)
            instrumented = min(governed)
            total_plain += base
            total_governed += instrumented
            overhead = (instrumented / base - 1.0) * 100 if base > 0 else 0.0
            rows.append(
                [
                    n,
                    f"{base * 1000:.1f} ms",
                    f"{instrumented * 1000:.1f} ms",
                    f"{overhead:+.1f}%",
                ]
            )
        rows.append(
            [
                "total",
                f"{total_plain * 1000:.1f} ms",
                f"{total_governed * 1000:.1f} ms",
                f"{(total_governed / total_plain - 1.0) * 100:+.1f}%",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "Runtime governance overhead (genomics LAV workload)",
        ["proteins", "ungoverned", "governed", "overhead"],
        rows,
    )
    # Asserted on the size-aggregated total (per-size rows on the smallest
    # inputs are dominated by timer noise) and loosely — the target is
    # < 5%, the ceiling keeps preempted CI runners from flaking.
    aggregate = float(rows[-1][3].rstrip("%"))
    assert aggregate < 15.0, (
        f"governance overhead {aggregate:.1f}% exceeds the 15% ceiling"
    )
