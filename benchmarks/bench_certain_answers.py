"""Experiment E3 — Theorem 2: certain answers of monotone queries in coNP.

Paper claim: for ``Σ_t`` = egds + weakly acyclic tgds and monotone queries
(UCQs), the complement of the certain-answer problem is in NP via the
small-solution property.  The bench cross-validates the falsification
search against explicit enumeration of all minimal solutions, and measures
how the cost scales with the number of independent choices (each
additional choice doubles the solution family, while the falsification
search typically stops at the first counterexample).
"""

from __future__ import annotations

import time

from repro import Instance, PDESetting, parse_instance, parse_query
from repro.solver import certain_answers, enumerate_solutions, is_certain


def choice_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"A": 1, "R": 2},
        target={"T": 2},
        st="A(x) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
    )


def chained_source(choices: int) -> str:
    facts = ["A(a0)", "R(a0, b)", "R(a0, c)"]
    for index in range(1, choices):
        facts += [f"A(a{index})", f"R(a{index}, b)", f"R(a{index}, c)"]
    return "; ".join(facts)


def test_falsification_vs_enumeration(benchmark, table):
    """The two independent certain-answer procedures must agree."""
    setting = choice_setting()
    query = parse_query("q(x) :- T(x, y)")
    source = parse_instance(chained_source(3))

    def run():
        direct = certain_answers(setting, query, source, Instance())
        by_enumeration = None
        for solution in enumerate_solutions(setting, source, Instance()):
            answers = query.answers(solution)  # null-free answers only
            by_enumeration = answers if by_enumeration is None else by_enumeration & answers
        assert by_enumeration == direct.answers
        return [len(direct.answers), direct.stats.get("candidates")]

    certain_count, candidates = benchmark(run)
    table(
        "E3: falsification search vs full enumeration",
        ["certain answers", "candidate answers"],
        [[certain_count, candidates]],
    )


def test_scaling_with_choice_count(benchmark, table):
    """Solution family doubles per choice; certain-answer checks stay fast
    because a falsifying valuation is found early (or pruned)."""
    setting = choice_setting()
    query = parse_query("q(x, y) :- T(x, y)")
    sizes = [2, 4, 6, 8]

    def run():
        rows = []
        for n in sizes:
            source = parse_instance(chained_source(n))
            started = time.perf_counter()
            # T(a0, b) is never certain: T(a0, c) offers an alternative.
            from repro.core.terms import Constant

            certain = is_certain(
                setting, query, source, Instance(), (Constant("a0"), Constant("b"))
            )
            elapsed = time.perf_counter() - started
            assert certain is False
            solution_count = 2 ** n
            rows.append([n, solution_count, f"{elapsed * 1000:.2f} ms"])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E3: falsification cost vs exploding solution family",
        ["choices", "#solutions", "is_certain time"],
        rows,
    )


def test_vacuous_certainty(benchmark, table):
    """No solutions -> everything is (vacuously) certain; the result flags it."""
    setting = choice_setting()
    query = parse_query("q(x) :- T(x, y)")
    source = parse_instance("A(a)")  # no R edge: unsolvable

    def run():
        result = certain_answers(setting, query, source, Instance())
        assert not result.solutions_exist
        return result

    result = benchmark(run)
    table(
        "E3: vacuous certainty on unsolvable input",
        ["solutions exist", "reported answers"],
        [[result.solutions_exist, sorted(result.answers)]],
    )
