"""Experiments E5/E6/E7 — the polynomial Figure 3 algorithm (Theorem 4,
Corollaries 1 and 2).

Paper claim: for settings in ``C_tract`` — in particular LAV ``Σ_ts``
(Corollary 2) and full ``Σ_st`` (Corollary 1) — SOL(P) is decidable in
polynomial time.  The bench measures the ``ExistsSolution`` runtime as the
instance grows, checks agreement with the generic NP solver on small
inputs, and reports the empirical growth exponent (should stay far from
exponential; roughly quadratic here because the canonical-instance chase
dominates).
"""

from __future__ import annotations

import math
import time

from repro import Instance, solve
from repro.workloads import generate_genomics_data, genomics_setting
from repro.workloads.instances import random_source
from repro.workloads.settings import random_full_st_setting, random_lav_setting


def test_lav_scaling(benchmark, table):
    """Corollary 2 (LAV Σ_ts) on the genomics scenario, growing sizes."""
    setting = genomics_setting()
    sizes = [10, 20, 40, 80]
    data = {n: generate_genomics_data(proteins=n, seed=7) for n in sizes}

    def run():
        rows = []
        for n in sizes:
            source, target = data[n]
            started = time.perf_counter()
            result = solve(setting, source, target)
            elapsed = time.perf_counter() - started
            assert result.exists
            rows.append([n, len(source), f"{elapsed * 1000:.1f} ms", result.method])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E5/E7: Figure 3 on LAV Σ_ts (genomics), paper: polynomial",
        ["proteins", "|I|", "time", "method"],
        rows,
    )
    # Empirical growth exponent between the two largest sizes.
    t_small = float(rows[-2][2].split()[0])
    t_large = float(rows[-1][2].split()[0])
    if t_small > 0:
        exponent = math.log(max(t_large, 1e-9) / t_small, 2)
        print(f"growth exponent (size doubling): {exponent:.2f} (poly expected, << 8)")
        assert exponent < 8  # far from the exponential blow-up of Theorem 3


def test_full_st_scaling(benchmark, table):
    """Corollary 1 (full Σ_st) on random settings, growing instances."""
    setting = random_full_st_setting(seed=3)
    sizes = [8, 16, 32, 64]
    sources = {
        n: random_source(setting, domain_size=max(4, n // 2), facts_per_relation=n, seed=n)
        for n in sizes
    }

    def run():
        rows = []
        for n in sizes:
            started = time.perf_counter()
            result = solve(setting, sources[n], Instance())
            elapsed = time.perf_counter() - started
            assert result.method == "tractable"
            rows.append([n, len(sources[n]), result.exists, f"{elapsed * 1000:.1f} ms"])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E6: Figure 3 on full Σ_st (random settings), paper: polynomial",
        ["facts/rel", "|I|", "exists", "time"],
        rows,
    )


def test_agreement_with_generic_solver(benchmark, table):
    """Theorem 5 correctness: Figure 3 agrees with the NP valuation search."""
    pairs = []
    for seed in range(6):
        setting = random_lav_setting(seed=seed)
        source = random_source(setting, domain_size=3, facts_per_relation=2, seed=seed)
        pairs.append((setting, source))

    def run():
        rows = []
        for index, (setting, source) in enumerate(pairs):
            fast = solve(setting, source, Instance(), method="tractable").exists
            slow = solve(setting, source, Instance(), method="valuation").exists
            assert fast == slow
            rows.append([index, fast, slow])
        return rows

    rows = benchmark(run)
    table(
        "E5: tractable vs generic solver agreement (random LAV settings)",
        ["setting", "Figure 3", "valuation search"],
        rows,
    )
