"""Experiment E4 — Theorem 3: NP-hardness via the CLIQUE reduction.

Paper claim: there is a fixed PDE setting with no target constraints
(acyclic relation-level dependency graph!) whose existence-of-solutions
problem is NP-complete, and a Boolean conjunctive query whose certain
answers are coNP-complete.

The bench (a) validates the reduction against a clique oracle on random
graphs, (b) shows the solver's exponential growth on hard (no-clique)
instances as ``k`` grows — contrast with the polynomial Figure 3 runs in
``bench_tractable.py`` — and (c) reproduces the certain-answers variant.
"""

from __future__ import annotations

import time

from repro import Instance
from repro.reductions import (
    certain_answer_query,
    clique_setting,
    clique_source_instance,
    has_k_clique,
)
from repro.solver import certain_answers, solve
from repro.workloads import erdos_renyi, planted_clique


def test_reduction_correctness(benchmark, table):
    setting = clique_setting()
    graphs = [
        ("planted k=3", planted_clique(7, 3, 0.15, seed=1), 3),
        ("sparse", erdos_renyi(7, 0.15, seed=2), 3),
        ("medium", erdos_renyi(6, 0.45, seed=3), 3),
        ("dense", erdos_renyi(6, 0.8, seed=4), 3),
    ]

    def run():
        rows = []
        for label, (nodes, edges), k in graphs:
            source = clique_source_instance(nodes, edges, k)
            result = solve(setting, source, Instance())
            oracle = has_k_clique(nodes, edges, k)
            assert result.exists == oracle
            rows.append([label, len(nodes), len(edges), k, result.exists, oracle])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E4: SOL(P_clique) == k-clique existence (random graphs)",
        ["graph", "|V|", "|E|", "k", "solver", "oracle"],
        rows,
    )


def test_hard_instance_growth(benchmark, table):
    """No-clique instances force exhaustive search: effort grows with k."""
    setting = clique_setting()
    nodes, edges = erdos_renyi(7, 0.3, seed=5)
    ks = [2, 3, 4]

    def run():
        rows = []
        for k in ks:
            source = clique_source_instance(nodes, edges, k)
            started = time.perf_counter()
            result = solve(setting, source, Instance())
            elapsed = time.perf_counter() - started
            rows.append(
                [
                    k,
                    result.exists,
                    result.stats.get("nodes", 0),
                    f"{elapsed * 1000:.1f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E4: search effort vs k (paper: NP-complete, expect super-poly growth "
        "on 'no' instances)",
        ["k", "exists", "search nodes", "time"],
        rows,
    )
    # Search effort must grow with k on this graph (not flat).
    assert rows[-1][2] > rows[0][2]


def test_certain_answers_conp(benchmark, table):
    """The coNP side: certain(∃x P(x,x,x,x)) is false iff G has a k-clique."""
    setting = clique_setting()
    query = certain_answer_query()
    graphs = [
        ("triangle", ([1, 2, 3], [(1, 2), (2, 3), (1, 3)]), 3),
        ("path", ([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)]), 3),
        ("planted", planted_clique(6, 3, 0.1, seed=9), 3),
    ]

    def run():
        rows = []
        for label, (nodes, edges), k in graphs:
            source = clique_source_instance(nodes, edges, k, draw_from_nodes=True)
            result = certain_answers(setting, query, source, Instance())
            oracle = has_k_clique(nodes, edges, k)
            assert result.boolean_value is (not oracle)
            rows.append([label, k, oracle, result.boolean_value])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E4: coNP certain answers (paper: clique iff NOT certain)",
        ["graph", "k", "k-clique", "certain(q)"],
        rows,
    )
