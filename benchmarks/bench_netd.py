"""Experiment — real-socket daemon round latency and wire parity.

Two questions about :mod:`repro.netd`, answered on the loopback:

* **round latency** — how long one stamped publish → solve → ACK round
  takes through the full stack (frame codec, TCP, bounded queues, a
  journaled :class:`~repro.sync.SyncSession` solving in a worker
  thread), measured per round over a fresh daemon;
* **wire parity** — the daemon must inherit the simulator's delta-transfer
  win: facts-on-wire for the registry scenario, snapshot mode vs delta
  mode, over real sockets (clean links) side by side with the
  :class:`~repro.net.SimTransport` baseline of the very same scenario.
  The counts differ slightly (the clean-socket run skips the scenario's
  partitions and repairs lag with anti-entropy instead of refusing sends)
  but the delta reduction itself must survive the move to real sockets.

Records land in ``BENCH_netd.json`` via the grouped ``record`` fixture
(same schema as ``BENCH_net.json``).
"""

from __future__ import annotations

import asyncio
import time

from repro.net import NetworkSimulator, registry_scenario
from repro.net.scenarios import _registry_snapshots, registry_setting
from repro.netd import PublisherClient, SyncDaemon, run_scenario_netd
from repro.sync import Stamp


def _loopback_rounds(rounds: int) -> list[float]:
    """Per-round publish→ACK latencies through a fresh loopback daemon.

    Journal-free on purpose: the benchmark repeats the body, and a
    resumed journal would turn later repeats into stale replays.
    """

    async def run() -> list[float]:
        daemon = SyncDaemon(registry_setting(), ["peer-a"])
        await daemon.start()
        client = PublisherClient(daemon.address, "peer-a", ack_timeout=5.0)
        await client.start()
        snapshots = _registry_snapshots()
        latencies = []
        try:
            for index in range(rounds):
                snapshot = snapshots[index % len(snapshots)]
                started = time.perf_counter()
                outcome = await client.publish(Stamp(1, index + 1), snapshot)
                latencies.append(time.perf_counter() - started)
                assert outcome == "applied"
        finally:
            await client.close()
            await daemon.stop()
        return latencies

    return asyncio.run(run())


def test_loopback_round_latency(benchmark, table, record):
    """One publish→solve→ACK round through the real socket stack."""
    rounds = 12

    def run():
        return _loopback_rounds(rounds)

    latencies = benchmark.pedantic(run, rounds=3, iterations=1)
    best = min(latencies)
    mean = sum(latencies) / len(latencies)
    table(
        f"netd loopback round latency ({rounds} rounds, registry setting)",
        ["statistic", "latency"],
        [
            ["best", f"{best * 1000:.1f} ms"],
            ["mean", f"{mean * 1000:.1f} ms"],
            ["worst", f"{max(latencies) * 1000:.1f} ms"],
        ],
    )
    record(
        "bench_netd.loopback_latency",
        {
            "setting": "registry",
            "rounds": rounds,
            "best_ms": best * 1000,
            "mean_ms": mean * 1000,
            "worst_ms": max(latencies) * 1000,
        },
    )
    # The publish path polls outcomes on a 10 ms tick, so anything under
    # a second means the stack itself is healthy; this is a hang guard,
    # not a performance ceiling.
    assert mean < 1.0, f"loopback round took {mean:.2f}s on average"


def test_facts_on_wire_vs_simulator(table, record, tmp_path):
    """Same scenario, same protocol: the delta win survives real sockets."""
    seed = 7
    wire = {}
    for mode, deltas in (("snapshot", False), ("delta", True)):
        report = run_scenario_netd(
            registry_scenario(seed=seed),
            deltas=deltas,
            use_chaos=False,  # clean links: wire counts are deterministic
            journal_dir=tmp_path / f"netd-{mode}",
        )
        assert report.converged
        sim_report = NetworkSimulator(
            registry_scenario(seed=seed), deltas=deltas
        ).run()
        assert sim_report.converged
        wire[mode] = {
            "netd": report.stats["facts_sent"],
            "sim": sim_report.stats["facts_sent"],
        }

    reduction = wire["snapshot"]["netd"] / wire["delta"]["netd"]
    table(
        f"Facts on wire, registry scenario seed {seed} (clean links)",
        ["mode", "netd", "simulator"],
        [
            ["snapshot", wire["snapshot"]["netd"], wire["snapshot"]["sim"]],
            ["delta", wire["delta"]["netd"], wire["delta"]["sim"]],
        ],
    )
    record(
        "bench_netd.facts_on_wire",
        {
            "scenario": "registry",
            "seed": seed,
            "snapshot_netd": wire["snapshot"]["netd"],
            "snapshot_sim": wire["snapshot"]["sim"],
            "delta_netd": wire["delta"]["netd"],
            "delta_sim": wire["delta"]["sim"],
            "reduction": reduction,
        },
    )
    assert reduction > 1.0, "delta mode failed to reduce the wire at all"
