"""Experiment E1 — Example 1 semantics and its cost.

Paper artifact: Example 1 and the certain-answer computations below
Definition 4.  The bench validates the exact semantics on every paper
input and measures the solver cost on scaled-up versions of the
triangle-ish instance (disjoint copies of it), which stays polynomial —
the setting is in ``C_tract``.
"""

from __future__ import annotations

from repro import Instance, PDESetting, parse_instance, parse_query, solve
from repro.solver import certain_answers


def example1_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
        name="example-1",
    )


def scaled_triangles(copies: int) -> Instance:
    parts = []
    for index in range(copies):
        parts.append(f"E(a{index}, b{index}); E(b{index}, c{index}); E(a{index}, c{index})")
    return parse_instance("; ".join(parts))


def test_example1_semantics(benchmark, table):
    setting = example1_setting()
    cases = [
        ("E(a, b); E(b, c)", False),
        ("E(a, a)", True),
        ("E(a, b); E(b, c); E(a, c)", True),
    ]

    def run():
        results = []
        for text, expected in cases:
            result = solve(setting, parse_instance(text), Instance())
            assert result.exists is expected
            results.append((text, result.exists))
        return results

    results = benchmark(run)
    table(
        "E1: Example 1 solution existence (paper: no / unique / two solutions)",
        ["source instance", "solution exists", "paper"],
        [[text, got, expected] for (text, expected), (_t, got) in zip(cases, results)],
    )


def test_example1_certain_answers(benchmark, table):
    setting = example1_setting()
    query = parse_query("H(x, y), H(y, z)")
    cases = [
        ("E(a, a)", True),
        ("E(a, b); E(b, c); E(a, c)", False),
    ]

    def run():
        out = []
        for text, expected in cases:
            result = certain_answers(setting, query, parse_instance(text), Instance())
            assert result.boolean_value is expected
            out.append((text, result.boolean_value))
        return out

    results = benchmark(run)
    table(
        "E1: certain answers of ∃xyz H(x,y) ∧ H(y,z)",
        ["source instance", "certain(q)", "paper"],
        [[text, got, expected] for (text, expected), (_t, got) in zip(cases, results)],
    )


def test_example1_scaling(benchmark, table):
    """Disjoint copies of the triangle-ish instance: polynomial via Figure 3."""
    setting = example1_setting()
    sizes = [4, 8, 16]
    instances = {n: scaled_triangles(n) for n in sizes}

    def run():
        rows = []
        for n in sizes:
            result = solve(setting, instances[n], Instance())
            assert result.exists
            rows.append([n, 3 * n, result.method])
        return rows

    rows = benchmark(run)
    table("E1: scaled Example 1 (all solvable)", ["copies", "|I|", "method"], rows)
