"""Ablation — the naive-evaluation certain-answer screen vs the exact
coNP procedure.

The paper leaves certain answers for ``C_tract`` open; the library ships a
polynomial sound under-approximation (naive evaluation over ``J_can``).
This bench measures (a) the cost gap between the screen and the exact
procedure as the choice space grows, and (b) the precision of the screen —
where it is exact and where it undershoots.
"""

from __future__ import annotations

import time

from repro import Instance, PDESetting, parse_instance, parse_query
from repro.solver import certain_answers
from repro.solver.naive_certain import naive_certain_answers


def choice_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"A": 1, "R": 2},
        target={"T": 2},
        st="A(x) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
    )


def forced_source(n: int) -> Instance:
    """n elements, each with exactly one R-successor: all imports forced."""
    facts = []
    for index in range(n):
        facts.append(f"A(a{index})")
        facts.append(f"R(a{index}, b{index})")
    return parse_instance("; ".join(facts))


def open_source(n: int) -> Instance:
    """n elements, each with two R-successors: nothing fully certain."""
    facts = []
    for index in range(n):
        facts.append(f"A(a{index})")
        facts.append(f"R(a{index}, b{index})")
        facts.append(f"R(a{index}, c{index})")
    return parse_instance("; ".join(facts))


def test_screen_cost_vs_exact(benchmark, table):
    setting = choice_setting()
    query = parse_query("q(x, y) :- T(x, y)")
    sizes = [2, 4, 6]

    def run():
        rows = []
        for n in sizes:
            source = open_source(n)
            started = time.perf_counter()
            screen = naive_certain_answers(setting, query, source, Instance())
            screen_time = time.perf_counter() - started
            started = time.perf_counter()
            exact = certain_answers(setting, query, source, Instance())
            exact_time = time.perf_counter() - started
            assert screen.answers <= exact.answers
            rows.append(
                [
                    n,
                    len(screen.answers),
                    len(exact.answers),
                    f"{screen_time * 1000:.2f} ms",
                    f"{exact_time * 1000:.2f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "ablation: naive screen vs exact certain answers (open choices)",
        ["choices", "screen |answers|", "exact |answers|", "screen time", "exact time"],
        rows,
    )


def test_screen_precision(benchmark, table):
    """Forced imports: the screen misses them (nulls in J_can) while the
    exact procedure recovers them — the documented precision boundary."""
    setting = choice_setting()
    query = parse_query("q(x, y) :- T(x, y)")

    def run():
        rows = []
        for label, source, expected_exact in [
            ("forced (n=3)", forced_source(3), 3),
            ("open (n=3)", open_source(3), 0),
        ]:
            screen = naive_certain_answers(setting, query, source, Instance())
            exact = certain_answers(setting, query, source, Instance())
            assert len(exact.answers) == expected_exact
            rows.append([label, len(screen.answers), len(exact.answers)])
        return rows

    rows = benchmark(run)
    table(
        "ablation: screen precision (sound, incomplete where Σ_ts pins nulls)",
        ["instance", "screen", "exact"],
        rows,
    )


def test_screen_exact_on_ground_j_can(benchmark, table):
    """With full Σ_st the canonical instance is ground: screen == exact."""
    setting = PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
    )
    query = parse_query("q(x, y) :- H(x, y)")
    source = parse_instance("E(a, b); E(b, c); E(a, c); E(c, c)")

    def run():
        screen = naive_certain_answers(setting, query, source, Instance())
        exact = certain_answers(setting, query, source, Instance())
        assert screen.answers == exact.answers
        return [[len(screen.answers), len(exact.answers)]]

    rows = benchmark(run)
    table(
        "ablation: screen is exact when J_can is ground (full Σ_st)",
        ["screen", "exact"],
        rows,
    )
