"""Ablation — incremental sync sessions vs solving from scratch.

The paper's motivating scenario is periodic: the target re-imports from
the authority at regular intervals.  A :class:`~repro.sync.SyncSession`
seeds each round's solve with the previous materialization, so unchanged
rounds cost a satisfaction check instead of a full chase-and-search.

The bench replays a growing snapshot sequence both ways and reports the
per-round deltas; correctness is pinned by comparing the final states.
"""

from __future__ import annotations

import time

from repro import Instance, solve
from repro.sync import SyncSession
from repro.workloads import generate_genomics_data, genomics_setting


def snapshots(rounds: int, step: int):
    """Growing authority snapshots (each extends the previous)."""
    return [
        generate_genomics_data(proteins=(index + 1) * step, seed=3)[0]
        for index in range(rounds)
    ]


def test_incremental_vs_scratch(benchmark, table):
    setting = genomics_setting()
    series = snapshots(rounds=4, step=8)

    def run():
        rows = []
        session = SyncSession(setting)
        for index, source in enumerate(series):
            started = time.perf_counter()
            outcome = session.sync(source)
            incremental = time.perf_counter() - started
            assert outcome.ok

            started = time.perf_counter()
            scratch = solve(setting, source, Instance())
            scratch_time = time.perf_counter() - started
            assert scratch.exists

            # The two states agree up to renaming of labeled nulls (the
            # batch ids are minted independently in each run).
            from repro.core.homomorphism import has_instance_homomorphism

            state = session.state()
            assert len(state) == len(scratch.solution)
            assert has_instance_homomorphism(state, scratch.solution)
            assert has_instance_homomorphism(scratch.solution, state)
            rows.append(
                [
                    index + 1,
                    len(source),
                    len(outcome.added),
                    f"{incremental * 1000:.1f} ms",
                    f"{scratch_time * 1000:.1f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "ablation: incremental sync vs from-scratch solve (same final state)",
        ["round", "|I_t|", "imported", "incremental", "scratch"],
        rows,
    )


def test_withdrawal_rounds(benchmark, table):
    """Shrinking snapshots: the session retracts exactly the withdrawn data."""
    setting = genomics_setting()
    big, _ = generate_genomics_data(proteins=20, seed=9)
    small, _ = generate_genomics_data(proteins=10, seed=9)

    def run():
        session = SyncSession(setting)
        first = session.sync(big)
        second = session.sync(small)
        assert first.ok and second.ok
        assert len(second.retracted) > 0
        assert setting.is_solution(small, Instance(), session.state())
        return [[len(big), len(small), len(second.retracted)]]

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "sync sessions: authority withdrawal handling",
        ["|I_1|", "|I_2|", "retracted facts"],
        rows,
    )
