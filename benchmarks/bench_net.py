"""Experiment — simulator overhead over direct sync rounds.

The :mod:`repro.net` simulator wraps every snapshot ingestion in a
transport hop (fault decision, heap scheduling, stamp bookkeeping) and a
driver step.  The protocol machinery should be cheap relative to the
sync rounds themselves — the solver work dominates, not the simulated
network.  This bench measures:

* **direct**: the publisher's snapshots fed straight into one
  :class:`repro.sync.SyncSession` per peer (the work a perfect network
  would cause);
* **simulated**: the same snapshots run through
  :class:`repro.net.NetworkSimulator` on fault-free links (same solver
  work, plus all transport/driver overhead);
* **faulty**: the shipped ``registry`` scenario with its seeded
  drop/duplicate/reorder schedules and partition/heal — the full
  robustness path, including stale rejections and anti-entropy.

The record lands in ``BENCH_net.json`` (via the grouped ``record``
fixture).  The assertion keeps the fault-free simulator within a
generous multiple of direct rounds; the real number is in the table.
"""

from __future__ import annotations

import time

from repro.net import NetworkSimulator, Scenario, registry_scenario
from repro.net.scenarios import _registry_snapshots, registry_setting
from repro.sync import SyncSession


def _direct_rounds() -> None:
    setting = registry_setting()
    snapshots = _registry_snapshots()
    for _peer in range(3):
        session = SyncSession(setting)
        for snapshot in snapshots:
            assert session.sync(snapshot).ok


def _fault_free_scenario() -> Scenario:
    return Scenario(
        name="perfect",
        description="registry mirrored over perfect links",
        setting=registry_setting(),
        snapshots=_registry_snapshots(),
        peers=["peer-a", "peer-b", "peer-c"],
    )


def _simulated(scenario_builder) -> None:
    report = NetworkSimulator(scenario_builder()).run()
    assert report.converged


def test_simulator_overhead(benchmark, table, record):
    """Simulator driver + transport cost vs direct sync rounds."""
    repeats = 5
    variants = [
        ("direct", _direct_rounds),
        ("simulated", lambda: _simulated(_fault_free_scenario)),
        ("faulty", lambda: _simulated(lambda: registry_scenario(7))),
    ]

    def run():
        timings = {}
        for name, body in variants:
            samples = []
            for _ in range(repeats):
                started = time.perf_counter()
                body()
                samples.append(time.perf_counter() - started)
            timings[name] = min(samples)  # best-of-N: isolate overhead
        return timings

    timings = benchmark.pedantic(run, rounds=3, iterations=1)
    base = timings["direct"]
    rows = [
        [name, f"{timings[name] * 1000:.1f} ms", f"{timings[name] / base:.2f}x"]
        for name, _ in variants
    ]
    table(
        "Network simulator overhead (registry scenario, 6 rounds x 3 peers)",
        ["variant", "time", "vs direct"],
        rows,
    )
    ratio = timings["simulated"] / base
    record(
        "bench_net.simulator_overhead",
        {
            "scenario": "registry",
            "peers": 3,
            "rounds": 6,
            "direct_ms": base * 1000,
            "simulated_ms": timings["simulated"] * 1000,
            "faulty_ms": timings["faulty"] * 1000,
            "simulated_over_direct": ratio,
        },
    )
    # The convergence check replays a fault-free oracle (~one extra peer's
    # worth of sync rounds), so ~1.3x is inherent; 3x is the flake ceiling.
    assert ratio < 3.0, f"simulator overhead {ratio:.2f}x exceeds the 3x ceiling"
