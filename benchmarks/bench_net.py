"""Experiment — simulator overhead, and delta-transfer wire reduction.

The :mod:`repro.net` simulator wraps every snapshot ingestion in a
transport hop (fault decision, heap scheduling, stamp bookkeeping) and a
driver step.  The protocol machinery should be cheap relative to the
sync rounds themselves — the solver work dominates, not the simulated
network.  The overhead bench measures:

* **direct**: the publisher's snapshots fed straight into one
  :class:`repro.sync.SyncSession` per peer (the work a perfect network
  would cause);
* **simulated**: the same snapshots run through
  :class:`repro.net.NetworkSimulator` on fault-free links (same solver
  work, plus all transport/driver overhead);
* **faulty**: the shipped ``registry`` scenario with its seeded
  drop/duplicate/reorder schedules and partition/heal — the full
  robustness path, including stale rejections and anti-entropy.

The delta bench measures the wire win of delta transfer on the
``genomics-churn`` scenario (the paper's periodic re-ingestion at
production shape: big mostly-unchanged snapshots, mild faults): facts
sent with full state transfer vs ``deltas=True``, asserting the ≥ 2x
reduction the protocol exists for — and, across every shipped scenario,
that the delta run converges to a state identical to the snapshot-only
run (deltas are a pure wire optimization).

The records land in ``BENCH_net.json`` (via the grouped ``record``
fixture).  The assertion keeps the fault-free simulator within a
generous multiple of direct rounds; the real number is in the table.
"""

from __future__ import annotations

import time

from repro.net import NetworkSimulator, Scenario, registry_scenario
from repro.net.scenarios import (
    _registry_snapshots,
    genomics_churn_scenario,
    registry_setting,
    scenario_registry,
)
from repro.net.simulator import _states_agree
from repro.sync import SyncSession


def _direct_rounds() -> None:
    setting = registry_setting()
    snapshots = _registry_snapshots()
    for _peer in range(3):
        session = SyncSession(setting)
        for snapshot in snapshots:
            assert session.sync(snapshot).ok


def _fault_free_scenario() -> Scenario:
    return Scenario(
        name="perfect",
        description="registry mirrored over perfect links",
        setting=registry_setting(),
        snapshots=_registry_snapshots(),
        peers=["peer-a", "peer-b", "peer-c"],
    )


def _simulated(scenario_builder) -> None:
    report = NetworkSimulator(scenario_builder()).run()
    assert report.converged


def test_simulator_overhead(benchmark, table, record):
    """Simulator driver + transport cost vs direct sync rounds."""
    repeats = 5
    variants = [
        ("direct", _direct_rounds),
        ("simulated", lambda: _simulated(_fault_free_scenario)),
        ("faulty", lambda: _simulated(lambda: registry_scenario(7))),
    ]

    def run():
        timings = {}
        for name, body in variants:
            samples = []
            for _ in range(repeats):
                started = time.perf_counter()
                body()
                samples.append(time.perf_counter() - started)
            timings[name] = min(samples)  # best-of-N: isolate overhead
        return timings

    timings = benchmark.pedantic(run, rounds=3, iterations=1)
    base = timings["direct"]
    rows = [
        [name, f"{timings[name] * 1000:.1f} ms", f"{timings[name] / base:.2f}x"]
        for name, _ in variants
    ]
    table(
        "Network simulator overhead (registry scenario, 6 rounds x 3 peers)",
        ["variant", "time", "vs direct"],
        rows,
    )
    ratio = timings["simulated"] / base
    record(
        "bench_net.simulator_overhead",
        {
            "scenario": "registry",
            "peers": 3,
            "rounds": 6,
            "direct_ms": base * 1000,
            "simulated_ms": timings["simulated"] * 1000,
            "faulty_ms": timings["faulty"] * 1000,
            "simulated_over_direct": ratio,
        },
    )
    # The convergence check replays a fault-free oracle (~one extra peer's
    # worth of sync rounds), so ~1.3x is inherent; 3x is the flake ceiling.
    assert ratio < 3.0, f"simulator overhead {ratio:.2f}x exceeds the 3x ceiling"


def test_delta_transfer_reduction(table, record, tmp_path):
    """Facts-on-wire with deltas on vs off; states must be identical."""
    runs = {}
    sims = {}
    for mode, deltas in (("snapshot", False), ("delta", True)):
        sim = NetworkSimulator(genomics_churn_scenario(0), deltas=deltas)
        report = sim.run()
        assert report.converged, "\n".join(report.log)
        runs[mode], sims[mode] = report, sim
    for peer in sims["snapshot"].scenario.peers:
        assert _states_agree(
            sims["snapshot"].nodes[peer].state(), sims["delta"].nodes[peer].state()
        ), f"{peer} reached a different state with deltas enabled"

    full = runs["snapshot"].stats["facts_sent"]
    wire = runs["delta"].stats["facts_sent"]
    reduction = full / wire
    table(
        "Delta transfer (genomics-churn, 8 rounds x 3 peers, seed 0)",
        ["variant", "facts on wire", "reduction"],
        [
            ["snapshot", full, "1.00x"],
            ["delta", wire, f"{reduction:.2f}x"],
        ],
    )

    # Deltas are a pure optimization: every shipped scenario must reach
    # the identical converged state with deltas on and off.
    for name, builder in sorted(scenario_registry().items()):
        for seed in (0, 7):
            plain = NetworkSimulator(
                builder(seed), journal_dir=tmp_path / f"{name}-{seed}-plain"
            )
            delta = NetworkSimulator(
                builder(seed),
                journal_dir=tmp_path / f"{name}-{seed}-delta",
                deltas=True,
            )
            plain_report, delta_report = plain.run(), delta.run()
            assert plain_report.converged and delta_report.converged, (
                f"{name} seed {seed} diverged"
            )
            for peer in plain.scenario.peers:
                if plain.reachable(peer) and delta.reachable(peer):
                    assert _states_agree(
                        plain.nodes[peer].state(), delta.nodes[peer].state()
                    ), f"{name} seed {seed}: {peer} differs with deltas on"

    record(
        "bench_net.delta_transfer",
        {
            "scenario": "genomics-churn",
            "seed": 0,
            "peers": 3,
            "rounds": 8,
            "facts_sent_snapshot": full,
            "facts_sent_delta": wire,
            "reduction": reduction,
            "delta_published": runs["delta"].stats["delta_published"],
            "delta_applied": runs["delta"].stats["delta_applied"],
            "delta_fallback": runs["delta"].stats["delta_fallback"],
        },
    )
    assert reduction >= 2.0, (
        f"delta transfer saved only {reduction:.2f}x on the churn workload"
    )
