"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index.  Benchmarks print the table rows they produce (run
with ``-s`` to see them); ``pytest-benchmark`` captures the timing
distributions.

Benchmarks that also want a machine-readable record use the ``record``
fixture: each ``record(name, payload)`` call appends one measurement, and
when at least one was recorded the session writes ``BENCH_obs.json`` at
the repository root — a schema-versioned document CI can diff or chart
without scraping the printed tables.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Measurements recorded via the ``record`` fixture this session.
_RECORDED: list[dict] = []

#: Schema version of ``BENCH_obs.json``; bump when the layout changes.
BENCH_SCHEMA_VERSION = 1


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned table of experiment results."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rendered)) if rendered else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n### {title}")
    print("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    for row in rendered:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


@pytest.fixture
def table():
    """Fixture handing the table printer to benchmark bodies."""
    return print_table


@pytest.fixture
def record():
    """Fixture recording one named measurement into ``BENCH_obs.json``.

    Call as ``record("bench_obs.tracer_overhead", {...})`` with a
    JSON-serializable payload; the file is written once at session end.
    """

    def _record(name: str, payload: dict) -> None:
        _RECORDED.append({"name": name, **payload})

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_obs.json`` when any benchmark recorded measurements."""
    if not _RECORDED:
        return
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "format": "repro-bench",
        "results": _RECORDED,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
