"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index.  Benchmarks print the table rows they produce (run
with ``-s`` to see them); ``pytest-benchmark`` captures the timing
distributions.
"""

from __future__ import annotations

import pytest


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned table of experiment results."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rendered)) if rendered else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n### {title}")
    print("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    for row in rendered:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


@pytest.fixture
def table():
    """Fixture handing the table printer to benchmark bodies."""
    return print_table
