"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index.  Benchmarks print the table rows they produce (run
with ``-s`` to see them); ``pytest-benchmark`` captures the timing
distributions.

Benchmarks that also want a machine-readable record use the ``record``
fixture: each ``record(name, payload)`` call appends one measurement, and
at session end every group of measurements is written to a
``BENCH_<group>.json`` file at the repository root — a schema-versioned
document CI can diff or chart without scraping the printed tables.  The
group is the measurement name's ``bench_<group>.`` prefix, so
``record("bench_obs.tracer_overhead", ...)`` lands in ``BENCH_obs.json``
and ``record("bench_net.sim_overhead", ...)`` in ``BENCH_net.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Measurements recorded via the ``record`` fixture this session, grouped
#: by output file stem (``obs`` → ``BENCH_obs.json``).
_RECORDED: dict[str, list[dict]] = {}

#: Schema version of the ``BENCH_*.json`` files; bump when the layout
#: changes.
BENCH_SCHEMA_VERSION = 1


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned table of experiment results."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rendered)) if rendered else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n### {title}")
    print("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    for row in rendered:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


@pytest.fixture
def table():
    """Fixture handing the table printer to benchmark bodies."""
    return print_table


def _group_of(name: str) -> str:
    """The output-file group of a measurement name.

    ``bench_net.sim_overhead`` → ``net``; names without the
    ``bench_<group>.`` shape fall back to the ``obs`` group (the original
    single-file behavior).
    """
    head, _, _ = name.partition(".")
    if head.startswith("bench_") and len(head) > len("bench_"):
        return head[len("bench_"):]
    return "obs"


@pytest.fixture
def record():
    """Fixture recording one named measurement into ``BENCH_<group>.json``.

    Call as ``record("bench_obs.tracer_overhead", {...})`` with a
    JSON-serializable payload; one file per group is written at session
    end.
    """

    def _record(name: str, payload: dict) -> None:
        _RECORDED.setdefault(_group_of(name), []).append({"name": name, **payload})

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<group>.json`` per group that recorded measurements."""
    root = Path(__file__).resolve().parent.parent
    for group, results in sorted(_RECORDED.items()):
        document = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "format": "repro-bench",
            "results": results,
        }
        out = root / f"BENCH_{group}.json"
        out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
