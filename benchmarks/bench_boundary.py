"""Experiments E9/E10/E11 — Section 4: the tractability boundary is tight.

Paper claims: each of three minimal relaxations of the ``C_tract``
conditions makes SOL NP-hard again —

* E9: a target *egd* (``Σ_st``/``Σ_ts`` satisfy conditions (1) + (2.1));
* E10: a *full target tgd* routed through a copy relation (same
  conditions);
* E11: *disjunction* in the right-hand side of ``Σ_ts`` (conditions (1) +
  (2.2) hold; reduction from 3-colorability).

The bench validates each reduction against its oracle and records the
search effort growing with the instance, in contrast with the flat effort
of the tractable class.
"""

from __future__ import annotations

import time

from repro import Instance
from repro.reductions import (
    coloring_setting,
    coloring_source_instance,
    egd_boundary_setting,
    egd_boundary_source_instance,
    full_tgd_boundary_setting,
    full_tgd_boundary_source_instance,
    has_k_clique,
    is_three_colorable,
)
from repro.solver import solve
from repro.workloads import complete_graph, cycle_graph, erdos_renyi


def test_egd_boundary(benchmark, table):
    setting = egd_boundary_setting()
    graphs = [
        ("triangle", ([1, 2, 3], [(1, 2), (2, 3), (1, 3)]), 3),
        ("path", ([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)]), 3),
        ("sparse", erdos_renyi(6, 0.25, seed=3), 3),
    ]

    def run():
        rows = []
        for label, (nodes, edges), k in graphs:
            source = egd_boundary_source_instance(nodes, edges, k)
            result = solve(setting, source, Instance())
            oracle = has_k_clique(nodes, edges, k)
            assert result.exists == oracle
            rows.append([label, k, result.exists, result.stats.get("nodes", 0)])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E9: target-egd relaxation (CLIQUE-hard; conditions (1)+(2.1) hold)",
        ["graph", "k", "solution", "search nodes"],
        rows,
    )


def test_full_tgd_boundary(benchmark, table):
    setting = full_tgd_boundary_setting()
    graphs = [
        ("triangle", ([1, 2, 3], [(1, 2), (2, 3), (1, 3)]), 3),
        ("path", ([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)]), 3),
    ]

    def run():
        rows = []
        for label, (nodes, edges), k in graphs:
            source = full_tgd_boundary_source_instance(nodes, edges, k)
            result = solve(setting, source, Instance())
            oracle = has_k_clique(nodes, edges, k)
            assert result.exists == oracle
            rows.append([label, k, result.exists, result.stats.get("nodes", 0)])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E10: full-target-tgd relaxation (CLIQUE-hard; conditions (1)+(2.1) hold)",
        ["graph", "k", "solution", "search nodes"],
        rows,
    )


def test_coloring_boundary(benchmark, table):
    setting = coloring_setting()
    graphs = [
        ("C5 (odd cycle)", cycle_graph(5)),
        ("C6 (even cycle)", cycle_graph(6)),
        ("K4", complete_graph(4)),
        ("random", erdos_renyi(6, 0.5, seed=8)),
    ]

    def run():
        rows = []
        for label, (nodes, edges) in graphs:
            source = coloring_source_instance(nodes, edges)
            result = solve(setting, source, Instance())
            oracle = is_three_colorable(nodes, edges)
            assert result.exists == oracle
            rows.append([label, result.exists, oracle, result.stats.get("nodes", 0)])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E11: disjunctive Σ_ts (3-COL-hard; conditions (1)+(2.2) hold)",
        ["graph", "solution", "3-colorable", "search nodes"],
        rows,
    )


def test_coloring_growth(benchmark, table):
    """Effort grows on non-3-colorable instances as the graph grows
    (K4 plus pendant paths keeps instances 'no')."""
    setting = coloring_setting()

    def hard_instance(extra: int):
        nodes, edges = complete_graph(4)
        for index in range(extra):
            new = 100 + index
            edges = list(edges) + [(0, new)]
            nodes = list(nodes) + [new]
        return nodes, edges

    sizes = [0, 2, 4]

    def run():
        rows = []
        for extra in sizes:
            nodes, edges = hard_instance(extra)
            source = coloring_source_instance(nodes, edges)
            started = time.perf_counter()
            result = solve(setting, source, Instance())
            elapsed = time.perf_counter() - started
            assert not result.exists
            rows.append(
                [len(nodes), result.stats.get("nodes", 0), f"{elapsed * 1000:.1f} ms"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E11: effort on non-3-colorable instances",
        ["|V|", "search nodes", "time"],
        rows,
    )
