"""Experiment E8 — Theorem 6: constant nulls per block inside C_tract.

Paper claim: for settings in ``C_tract``, every block of ``I_can`` has a
*constant* number of nulls (independent of the instance size), which is
what makes the per-block homomorphism tests of Figure 3 polynomial.

The bench grows instances for a LAV and a full-Σ_st setting and records
the maximum nulls per block (must stay flat), then contrasts with the
CLIQUE setting, where the connected-null structure of ``I_can`` grows with
the input (the second ``Σ_ts`` dependency chains the null components of
all ``P``-facts that share an element).
"""

from __future__ import annotations

from repro import Instance, PDESetting, parse_instance
from repro.core.blocks import decompose_into_blocks
from repro.reductions import clique_setting, clique_source_instance
from repro.solver import canonical_instances
from repro.workloads import generate_genomics_data, genomics_setting


def max_nulls_per_block(setting, source, target) -> tuple[int, int]:
    _j_can, i_can, _stats = canonical_instances(setting, source, target)
    blocks = decompose_into_blocks(i_can)
    biggest = max((block.null_count for block in blocks), default=0)
    return biggest, len(blocks)


def test_lav_blocks_stay_constant(benchmark, table):
    setting = genomics_setting()
    sizes = [5, 10, 20, 40]
    data = {n: generate_genomics_data(proteins=n, seed=1) for n in sizes}

    def run():
        rows = []
        for n in sizes:
            source, target = data[n]
            biggest, count = max_nulls_per_block(setting, source, target)
            rows.append([n, count, biggest])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E8: nulls per block, LAV setting (paper: constant)",
        ["proteins", "#blocks", "max nulls/block"],
        rows,
    )
    ceilings = [row[2] for row in rows]
    assert max(ceilings) <= 2  # flat, independent of instance size


def test_marked_example_blocks(benchmark, table):
    setting = PDESetting.from_text(
        source={"S": 2},
        target={"T": 2},
        st="S(x1, x2) -> T(x1, y)",
        ts="T(x1, x2) -> S(w, x2)",
    )
    sizes = [4, 8, 16, 32]

    def run():
        rows = []
        for n in sizes:
            source = parse_instance("; ".join(f"S(a{i}, b{i})" for i in range(n)))
            biggest, count = max_nulls_per_block(setting, source, Instance())
            assert biggest <= 2
            rows.append([n, count, biggest])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E8: nulls per block, Definition 8 illustration (paper: constant)",
        ["|I|", "#blocks", "max nulls/block"],
        rows,
    )


def test_clique_blocks_grow(benchmark, table):
    """Outside C_tract the block structure degenerates: the CLIQUE setting
    chains every P-fact's nulls together through the S-consistency
    dependencies, so one giant block absorbs all the nulls."""
    setting = clique_setting()
    ks = [2, 3, 4]

    def run():
        rows = []
        for k in ks:
            source = clique_source_instance(list(range(5)), [(0, 1), (1, 2)], k)
            biggest, count = max_nulls_per_block(setting, source, Instance())
            rows.append([k, count, biggest])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E8 contrast: nulls per block, CLIQUE setting (grows with k)",
        ["k", "#blocks", "max nulls/block"],
        rows,
    )
    ceilings = [row[2] for row in rows]
    assert ceilings[-1] > ceilings[0]  # grows with the input
