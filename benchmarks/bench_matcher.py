"""Ablation — the homomorphism matcher's positional index.

Every algorithm in the library funnels through the backtracking matcher;
this bench pins its scaling behavior: conjunctive-query evaluation over
growing instances (joins should scale near-linearly in matches thanks to
the positional index), and whole-instance embeddings of large ground
blocks (the containment fast path).
"""

from __future__ import annotations

import time

from repro.core.homomorphism import has_instance_homomorphism
from repro.core.parser import parse_instance, parse_query


def chain_instance(n: int):
    return parse_instance("; ".join(f"E(a{i}, a{i + 1})" for i in range(n)))


def test_join_scaling(benchmark, table):
    query = parse_query("q(x, w) :- E(x, y), E(y, z), E(z, w)")
    sizes = [100, 200, 400, 800]
    instances = {n: chain_instance(n) for n in sizes}

    def run():
        rows = []
        for n in sizes:
            best = float("inf")
            for _ in range(3):  # best-of-3: sub-ms timings are noisy
                started = time.perf_counter()
                answers = query.answers(instances[n])
                best = min(best, time.perf_counter() - started)
            assert len(answers) == n - 2
            rows.append([n, len(answers), f"{best * 1000:.1f} ms"])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "matcher: 3-way join over a chain (index keeps it near-linear)",
        ["|E|", "answers", "time"],
        rows,
    )
    # Near-linear-ish: 8x data must stay clearly below the ~64x a
    # quadratic full scan would cost (generous envelope; timings at the
    # millisecond scale jitter).
    t_small = float(rows[0][2].split()[0])
    t_large = float(rows[-1][2].split()[0])
    if t_small > 1.0:
        assert t_large / t_small < 60


def test_ground_embedding_fast_path(benchmark, table):
    sizes = [500, 2000, 8000]

    def run():
        rows = []
        for n in sizes:
            big = chain_instance(n)
            half = chain_instance(n // 2)
            started = time.perf_counter()
            assert has_instance_homomorphism(half, big)
            assert not has_instance_homomorphism(big, half)
            elapsed = time.perf_counter() - started
            rows.append([n, f"{elapsed * 1000:.2f} ms"])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "matcher: ground-instance embeddings via containment fast path",
        ["|E|", "time (both directions)"],
        rows,
    )


def test_selective_join_via_index(benchmark, table):
    """A star join where the index collapses candidate sets to single rows."""
    n = 400
    facts = ["Hub(center)"]
    for index in range(n):
        facts.append(f"Spoke(center, leaf{index})")
        facts.append(f"Color(leaf{index}, c{index % 5})")
    instance = parse_instance("; ".join(facts))
    query = parse_query("q(l) :- Hub(h), Spoke(h, l), Color(l, 'c0')")

    def run():
        answers = query.answers(instance)
        assert len(answers) == n // 5
        return len(answers)

    result = benchmark(run)
    table(
        "matcher: selective star join (Color bound to 'c0')",
        ["spokes", "answers"],
        [[n, result]],
    )
