"""Experiment E15 — Section 2: multi-PDE reduces to a single PDE.

Paper claim: a family of PDE settings sharing one target peer has exactly
the same space of solutions as the single PDE obtained by merging the
source schemas and unioning the dependency sets.

The bench checks the equivalence over a grid of candidates and measures
how the merged solve scales with the number of source peers.
"""

from __future__ import annotations

import time

from repro import Instance, MultiPDESetting, PDESetting, parse_instance
from repro.solver import solve


def make_peer(index: int) -> PDESetting:
    relation = f"Src{index}"
    return PDESetting.from_text(
        source={relation: 2},
        target={"Hub": 3},
        st=f"{relation}(x, y) -> Hub(x, y, {index})",
        ts=f"Hub(x, y, {index}) -> {relation}(x, y)",
        name=f"peer-{index}",
    )


def peer_source(index: int, facts: int) -> Instance:
    rows = "; ".join(f"Src{index}(k{i}, v{i})" for i in range(facts))
    return parse_instance(rows)


def test_solution_space_equivalence(benchmark, table):
    peers = [make_peer(i) for i in range(3)]
    multi = MultiPDESetting(peers)
    merged = multi.merge()
    sources = [peer_source(i, 2) for i in range(3)]
    union = multi.combine_sources(sources)

    candidates = {
        "exact import": solve(merged, union, Instance()).solution,
        "missing fact": parse_instance("Hub(k0, v0, 0)"),
        "foreign fact": parse_instance("Hub(zz, zz, 9)"),
        "empty": Instance(),
    }

    def run():
        rows = []
        for label, candidate in candidates.items():
            if candidate is None:
                continue
            multi_says = multi.is_solution(sources, Instance(), candidate)
            merged_says = merged.is_solution(union, Instance(), candidate)
            assert multi_says == merged_says
            rows.append([label, multi_says, merged_says])
        return rows

    rows = benchmark(run)
    table(
        "E15: multi-PDE vs merged single PDE (must agree on every candidate)",
        ["candidate", "multi-PDE", "merged PDE"],
        rows,
    )


def test_scaling_with_peer_count(benchmark, table):
    counts = [2, 4, 8]

    def run():
        rows = []
        for count in counts:
            peers = [make_peer(i) for i in range(count)]
            multi = MultiPDESetting(peers)
            merged = multi.merge()
            sources = [peer_source(i, 3) for i in range(count)]
            union = multi.combine_sources(sources)
            started = time.perf_counter()
            result = solve(merged, union, Instance())
            elapsed = time.perf_counter() - started
            assert result.exists
            rows.append([count, len(union), f"{elapsed * 1000:.1f} ms", result.method])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E15: merged solve scaling with the number of source peers",
        ["peers", "|I|", "time", "method"],
        rows,
    )
