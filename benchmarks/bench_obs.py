"""Experiment — observability overhead of the tracing layer.

:mod:`repro.obs` instruments the solvers at *phase* granularity: one span
per solve / chase / search, with per-search statistics folded into span
counters at span exit rather than recorded per node.  Untraced runs go
through a shared no-op tracer whose ``span()`` returns a reusable null
context manager, so the cost of leaving tracing off should be
unmeasurable.  This bench records both sides:

* **untraced**: ``solve`` with no tracer (the ``NULL_TRACER`` path);
* **traced**: the same solves under a live :class:`repro.obs.Tracer`
  plus a :class:`repro.obs.MetricsRegistry`.

Target: traced stays within a few percent of untraced on the
size-aggregated total — the assertion allows 15% to keep CI machines
with noisy timers green, while the printed table and the
``BENCH_obs.json`` record hold the actual ratio.
"""

from __future__ import annotations

import time

from repro import solve
from repro.net import NetworkSimulator, scenario_registry
from repro.obs import MetricsRegistry, Tracer
from repro.workloads import generate_genomics_data, genomics_setting


def test_tracer_overhead(benchmark, table, record):
    """Traced vs untraced solve time on the genomics LAV workload."""
    setting = genomics_setting()
    sizes = [20, 40, 80]
    data = {n: generate_genomics_data(proteins=n, seed=7) for n in sizes}
    repeats = 7

    def run():
        rows = []
        total_plain = 0.0
        total_traced = 0.0
        for n in sizes:
            source, target = data[n]
            plain: list[float] = []
            traced: list[float] = []
            for _ in range(repeats):
                started = time.perf_counter()
                result = solve(setting, source, target)
                plain.append(time.perf_counter() - started)
                assert result.exists and result.decided

                started = time.perf_counter()
                result = solve(
                    setting, source, target,
                    tracer=Tracer(), metrics=MetricsRegistry(),
                )
                traced.append(time.perf_counter() - started)
                assert result.exists and result.decided
            # Best-of-N isolates the instrumentation cost from scheduler
            # noise: both paths run identical work modulo the spans.
            base = min(plain)
            instrumented = min(traced)
            total_plain += base
            total_traced += instrumented
            overhead = (instrumented / base - 1.0) * 100 if base > 0 else 0.0
            rows.append(
                [
                    n,
                    f"{base * 1000:.1f} ms",
                    f"{instrumented * 1000:.1f} ms",
                    f"{overhead:+.1f}%",
                ]
            )
        rows.append(
            [
                "total",
                f"{total_plain * 1000:.1f} ms",
                f"{total_traced * 1000:.1f} ms",
                f"{(total_traced / total_plain - 1.0) * 100:+.1f}%",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "Tracing overhead (genomics LAV workload)",
        ["proteins", "untraced", "traced", "overhead"],
        rows,
    )
    aggregate = float(rows[-1][3].rstrip("%"))
    record(
        "bench_obs.tracer_overhead",
        {
            "workload": "genomics",
            "sizes": sizes,
            "rows": [[str(cell) for cell in row] for row in rows],
            "aggregate_overhead_pct": aggregate,
        },
    )
    # Asserted on the size-aggregated total and loosely — the target is
    # < 5%, the ceiling keeps preempted CI runners from flaking.
    assert aggregate < 15.0, (
        f"tracing overhead {aggregate:.1f}% exceeds the 15% ceiling"
    )


def test_context_propagation_overhead(benchmark, table, record):
    """Wire trace-context propagation cost in the network simulator.

    Every publish now mints a :class:`repro.obs.TraceContext` and every
    delivery threads it through the apply path; under a live tracer the
    publish/apply spans are annotated with it as well.  This bench runs
    the same seeded scenario untraced (contexts minted, no spans) and
    traced (contexts + annotated spans) and asserts the traced side
    stays within the same 15% ceiling as the tracer bench — a fresh
    simulator per run because a scenario runs exactly once.
    """
    builders = scenario_registry()
    names = ["registry", "crash"]
    repeats = 7

    def run():
        rows = []
        total_plain = 0.0
        total_traced = 0.0
        for name in names:
            plain: list[float] = []
            traced: list[float] = []
            for _ in range(repeats):
                scenario = builders[name](0)
                started = time.perf_counter()
                NetworkSimulator(scenario).run()
                plain.append(time.perf_counter() - started)

                scenario = builders[name](0)
                started = time.perf_counter()
                NetworkSimulator(
                    scenario, tracer=Tracer(), metrics=MetricsRegistry()
                ).run()
                traced.append(time.perf_counter() - started)
            base = min(plain)
            instrumented = min(traced)
            total_plain += base
            total_traced += instrumented
            overhead = (instrumented / base - 1.0) * 100 if base > 0 else 0.0
            rows.append(
                [
                    name,
                    f"{base * 1000:.2f} ms",
                    f"{instrumented * 1000:.2f} ms",
                    f"{overhead:+.1f}%",
                ]
            )
        rows.append(
            [
                "total",
                f"{total_plain * 1000:.2f} ms",
                f"{total_traced * 1000:.2f} ms",
                f"{(total_traced / total_plain - 1.0) * 100:+.1f}%",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "Trace-context propagation overhead (network simulator)",
        ["scenario", "untraced", "traced", "overhead"],
        rows,
    )
    aggregate = float(rows[-1][3].rstrip("%"))
    record(
        "bench_obs.context_overhead",
        {
            "scenarios": names,
            "rows": [[str(cell) for cell in row] for row in rows],
            "aggregate_overhead_pct": aggregate,
        },
    )
    assert aggregate < 15.0, (
        f"context propagation overhead {aggregate:.1f}% exceeds the 15% ceiling"
    )
