"""Experiment E14 — Section 2: the PDE ↔ PDMS correspondence.

Paper claim: every PDE setting ``P`` translates into a PDMS ``N(P)`` (with
equality storage descriptions for the source peer and containment
descriptions for the target peer) so that solutions for ``(I, J)``
coincide with consistent data instances of ``N(P)``.

The bench checks the equivalence over a batch of candidates — valid
solutions, near-misses, and tampered assignments — and times the PDMS
consistency test against the direct Definition 2 test.
"""

from __future__ import annotations

from repro import Instance, parse_instance
from repro.pdms import check_correspondence, translate_setting
from repro.solver import enumerate_solutions, solve
from repro.workloads import generate_genomics_data, genomics_setting


def example1_setting():
    from repro import PDESetting

    return PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
        name="example-1",
    )


def test_correspondence_on_candidate_batch(benchmark, table):
    setting = example1_setting()
    source = parse_instance("E(a, b); E(b, c); E(a, c)")
    candidates = [
        ("minimal solution", parse_instance("H(a, c)")),
        ("larger solution", parse_instance("H(a, b); H(b, c); H(a, c)")),
        ("missing forced fact", parse_instance("H(a, b)")),
        ("unbacked fact", parse_instance("H(a, c); H(c, a)")),
        ("empty candidate", Instance()),
    ]

    def run():
        rows = []
        for label, candidate in candidates:
            check = check_correspondence(setting, source, Instance(), candidate)
            assert check.agrees
            rows.append([label, check.is_pde_solution, check.is_pdms_consistent])
        return rows

    rows = benchmark(run)
    table(
        "E14: PDE solution test vs PDMS consistency (must agree)",
        ["candidate", "PDE solution", "PDMS consistent"],
        rows,
    )


def test_correspondence_on_solver_output(benchmark, table):
    """Every enumerated minimal solution must be PDMS-consistent."""
    setting = example1_setting()
    sources = [
        parse_instance("E(a, a)"),
        parse_instance("E(a, b); E(b, c); E(a, c)"),
        parse_instance("E(a, b); E(b, a)"),
    ]

    def run():
        rows = []
        for source in sources:
            checked = 0
            for solution in enumerate_solutions(setting, source, Instance(), limit=4):
                check = check_correspondence(setting, source, Instance(), solution)
                assert check.is_pdms_consistent
                checked += 1
            rows.append([str(source), checked])
        return rows

    rows = benchmark(run)
    table(
        "E14: solver witnesses are PDMS-consistent",
        ["source", "solutions checked"],
        rows,
    )


def test_translation_shape(benchmark, table):
    """Structure of N(P): starred replicas + the right description kinds."""
    setting = genomics_setting()

    def run():
        pdms = translate_setting(setting)
        source_peer = pdms.peer("S")
        target_peer = pdms.peer("T")
        assert all(d.kind == "equality" for d in source_peer.storage)
        assert all(d.kind == "containment" for d in target_peer.storage)
        return [
            ["source peer locals", len(list(source_peer.local_schema))],
            ["target peer locals", len(list(target_peer.local_schema))],
            ["peer mappings", len(pdms.mappings)],
        ]

    rows = benchmark(run)
    table("E14: shape of N(P) for the genomics setting", ["item", "count"], rows)


def test_consistency_cost_on_real_data(benchmark, table):
    """PDMS consistency on a genomics sync result."""
    setting = genomics_setting()
    source, target = generate_genomics_data(proteins=15, seed=2)
    solution = solve(setting, source, target).solution

    def run():
        check = check_correspondence(setting, source, target, solution)
        assert check.agrees and check.is_pdms_consistent
        return check

    benchmark(run)
    table(
        "E14: consistency on genomics data",
        ["|I|", "|J'|"],
        [[len(source), len(solution)]],
    )


def test_containment_vs_equality_semantics(benchmark, table):
    """Experiment E16 — the Section 3.2 contrast: the Theorem 3 mappings
    are acyclic inclusions, harmless under containment-only storage
    semantics (PTIME, clique-oblivious) but coNP-hard under PDE's equality
    semantics for the source peer."""
    from repro.pdms import PDMS, Peer, StorageDescription, star_instance
    from repro.pdms.acyclic import acyclic_certain_answers
    from repro.reductions import (
        certain_answer_query,
        clique_setting,
        clique_source_instance,
    )
    from repro.solver import certain_answers as pde_certain

    setting = clique_setting()
    pdms = translate_setting(setting)
    weakened = PDMS(
        [
            Peer(
                peer.name,
                peer.schema,
                peer.local_schema,
                [
                    StorageDescription(d.peer_relation, d.query, "containment")
                    for d in peer.storage
                ],
            )
            for peer in pdms.peers
        ],
        pdms.mappings,
    )
    query = certain_answer_query()
    graphs = [
        ("triangle (3-clique)", ([1, 2, 3], [(1, 2), (2, 3), (1, 3)]), 3),
        ("path (no 3-clique)", ([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)]), 3),
    ]

    def run():
        rows = []
        for label, (nodes, edges), k in graphs:
            source = clique_source_instance(nodes, edges, k, draw_from_nodes=True)
            containment = acyclic_certain_answers(
                weakened, star_instance(source), query
            ).boolean_value
            pde = pde_certain(setting, query, source, Instance()).boolean_value
            rows.append([label, containment, pde])
        return rows

    rows = benchmark(run)
    table(
        "E16: certain(∃x P(x,x,x,x)) — containment-only PDMS vs PDE",
        ["graph", "containment semantics", "PDE semantics"],
        rows,
    )
    # Containment semantics never certifies the query; PDE flips with the
    # clique (Theorem 3).
    assert [row[1] for row in rows] == [False, False]
    assert [row[2] for row in rows] == [False, True]
