"""Tests for the classical data exchange baseline and the paper's
PDE-vs-data-exchange contrasts."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.setting import PDESetting
from repro.core.terms import Constant
from repro.dataexchange import (
    certain_answers_data_exchange,
    exists_solution_data_exchange,
    is_data_exchange_setting,
    universal_solution,
)
from repro.exceptions import SolverError
from repro.solver import certain_answers, solve


@pytest.fixture
def de_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"E": 2},
        target={"H": 2, "G": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        t="H(x, y) -> G(x, w)",
    )


class TestUniversalSolution:
    def test_chase_builds_universal(self, de_setting):
        universal = universal_solution(de_setting, parse_instance("E(a, b); E(b, c)"))
        assert universal is not None
        assert universal.count("H") == 1
        assert universal.count("G") == 1
        assert len(universal.nulls()) == 1

    def test_rejects_ts_dependencies(self, example1_setting):
        with pytest.raises(SolverError):
            universal_solution(example1_setting, parse_instance("E(a, a)"))

    def test_rejects_non_weakly_acyclic(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
            t="H(x, y) -> H(y, z)",
        )
        with pytest.raises(SolverError):
            universal_solution(setting, parse_instance("E(a, b)"))

    def test_failing_egd_gives_none(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
            t="H(x, y), H(x, y2) -> y = y2",
        )
        source = parse_instance("E(a, b); E(a, c)")
        assert universal_solution(setting, source) is None

    def test_is_data_exchange_setting(self, de_setting, example1_setting):
        assert is_data_exchange_setting(de_setting)
        assert not is_data_exchange_setting(example1_setting)


class TestExistence:
    def test_always_exists_without_target_constraints(self):
        """The paper's contrast: data exchange with Σ_t = ∅ always has
        solutions, unlike PDE (Example 1)."""
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, z), E(z, y) -> H(x, y)",
        )
        for text in ["E(a, b); E(b, c)", "E(a, a)", "E(a, b)"]:
            result = exists_solution_data_exchange(setting, parse_instance(text))
            assert result.exists

    def test_agrees_with_pde_dispatcher(self, de_setting):
        for text in ["E(a, b); E(b, c)", "E(a, a)"]:
            source = parse_instance(text)
            baseline = exists_solution_data_exchange(de_setting, source)
            pde = solve(de_setting, source, Instance())
            assert baseline.exists == pde.exists

    def test_universal_is_valid_solution(self, de_setting):
        source = parse_instance("E(a, b); E(b, c)")
        result = exists_solution_data_exchange(de_setting, source)
        assert de_setting.is_solution(source, Instance(), result.solution)

    def test_egd_failure_detected(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
            t="H(x, y), H(x, y2) -> y = y2",
        )
        source = parse_instance("E(a, b); E(a, c)")
        assert not exists_solution_data_exchange(setting, source).exists
        assert not solve(setting, source, Instance()).exists


class TestCertainAnswers:
    def test_naive_evaluation_exact(self, de_setting):
        source = parse_instance("E(a, b); E(b, c); E(c, d)")
        query = parse_query("q(x, y) :- H(x, y)")
        baseline = certain_answers_data_exchange(de_setting, query, source)
        exact = certain_answers(de_setting, query, source, Instance())
        assert baseline.answers == exact.answers
        assert baseline.answers == {
            (Constant("a"), Constant("c")),
            (Constant("b"), Constant("d")),
        }

    def test_null_positions_not_certain(self, de_setting):
        source = parse_instance("E(a, b); E(b, c)")
        query = parse_query("q(x, w) :- G(x, w)")
        baseline = certain_answers_data_exchange(de_setting, query, source)
        assert baseline.answers == set()  # w is a null in every minimal view

    def test_boolean_query_through_null_certain(self, de_setting):
        source = parse_instance("E(a, b); E(b, c)")
        query = parse_query("G(x, w)")
        baseline = certain_answers_data_exchange(de_setting, query, source)
        exact = certain_answers(de_setting, query, source, Instance())
        assert baseline.boolean_value is True
        assert exact.boolean_value is True

    def test_vacuous_on_failure(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
            t="H(x, y), H(x, y2) -> y = y2",
        )
        source = parse_instance("E(a, b); E(a, c)")
        query = parse_query("H(x, y)")
        result = certain_answers_data_exchange(setting, query, source)
        assert not result.solutions_exist
        assert result.boolean_value is True
