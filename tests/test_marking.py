"""Tests for marked positions and marked variables (Definition 8)."""

from repro.core.parser import parse_dependencies, parse_dependency
from repro.core.terms import Variable
from repro.tractability.marking import marked_positions, marked_variables


class TestMarkedPositions:
    def test_definition8_illustration(self):
        # Σ_st: S(x1, x2) → ∃y T(x1, y): only (T, 1) is marked.
        sigma_st = [parse_dependency("S(x1, x2) -> T(x1, y)")]
        assert marked_positions(sigma_st) == {("T", 1)}

    def test_clique_setting_positions(self):
        # Σ_st: D(x, y) → ∃z∃w P(x, z, y, w): positions 2 and 4 of P
        # (0-based indices 1 and 3) are marked.
        sigma_st = [parse_dependency("D(x, y) -> P(x, z, y, w)")]
        assert marked_positions(sigma_st) == {("P", 1), ("P", 3)}

    def test_full_tgds_mark_nothing(self):
        sigma_st = parse_dependencies(
            """
            E(x, y) -> H(y, x)
            E(x, y), E(y, z) -> H(x, z)
            """
        )
        assert marked_positions(sigma_st) == set()

    def test_union_across_tgds(self):
        sigma_st = parse_dependencies(
            """
            A(x) -> T(x, y)
            B(x) -> T(w, x)
            """
        )
        assert marked_positions(sigma_st) == {("T", 0), ("T", 1)}

    def test_empty_sigma_st(self):
        assert marked_positions([]) == set()


class TestMarkedVariables:
    def test_definition8_illustration(self):
        # Σ_ts: T(x1, x2) → ∃w S(w, x2): marked variables are x2 (at the
        # marked position (T, 1)) and w (existential).
        positions = {("T", 1)}
        ts = parse_dependency("T(x1, x2) -> S(w, x2)")
        assert marked_variables(ts, positions) == {Variable("x2"), Variable("w")}

    def test_clique_first_ts_tgd(self):
        positions = {("P", 1), ("P", 3)}
        ts = parse_dependency("P(x, z, y, w) -> E(z, w)")
        assert marked_variables(ts, positions) == {Variable("z"), Variable("w")}

    def test_clique_second_ts_tgd(self):
        positions = {("P", 1), ("P", 3)}
        ts = parse_dependency("P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)")
        assert marked_variables(ts, positions) == {
            Variable("z"),
            Variable("w"),
            Variable("z2"),
            Variable("w2"),
        }

    def test_existentials_always_marked(self):
        ts = parse_dependency("T(x1, x2) -> S(x1, w)")
        assert marked_variables(ts, set()) == {Variable("w")}

    def test_variable_at_marked_position_is_marked_even_if_absent_from_head(self):
        positions = {("T", 1)}
        ts = parse_dependency("T(x1, x2) -> S(x1, x1)")
        assert marked_variables(ts, positions) == {Variable("x2")}

    def test_variable_at_unmarked_position_not_marked(self):
        ts = parse_dependency("T(x1, x2) -> S(x1, x2)")
        assert marked_variables(ts, set()) == set()

    def test_disjunctive_ts_marked_variables(self):
        positions = {("C", 1)}
        ts = parse_dependency("Ep(x, y), C(x, u), C(y, v) -> (R(u), B(v)) | (B(u), R(v))")
        assert marked_variables(ts, positions) == {Variable("u"), Variable("v")}
