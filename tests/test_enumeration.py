"""Tests for solution enumeration and the brute-force oracle (E13)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.runtime import Budget
from repro.solver import (
    brute_force_exists,
    enumerate_solutions,
    minimal_solution_sizes,
    solve,
)


@pytest.fixture
def choice_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"A": 1, "R": 2},
        target={"T": 2},
        st="A(x) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
    )


class TestEnumerateSolutions:
    def test_counts_choices(self, choice_setting):
        source = parse_instance("A(a); R(a, b); R(a, c); R(a, d)")
        solutions = list(enumerate_solutions(choice_setting, source, Instance()))
        assert len(solutions) == 3

    def test_limit(self, choice_setting):
        source = parse_instance("A(a); R(a, b); R(a, c); R(a, d)")
        solutions = list(
            enumerate_solutions(choice_setting, source, Instance(), limit=2)
        )
        assert len(solutions) == 2

    def test_all_yielded_are_solutions(self, choice_setting):
        source = parse_instance("A(a); A(b); R(a, x); R(a, y); R(b, z)")
        for solution in enumerate_solutions(choice_setting, source, Instance()):
            assert choice_setting.is_solution(source, Instance(), solution)

    def test_empty_when_unsolvable(self, choice_setting):
        source = parse_instance("A(a)")
        assert list(enumerate_solutions(choice_setting, source, Instance())) == []

    def test_with_target_constraints(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
            t="T(x, y), T(x, y2) -> y = y2",
        )
        source = parse_instance("A(a); R(a, b); R(a, c)")
        solutions = list(enumerate_solutions(setting, source, Instance()))
        # The key holds within each solution, so each picks one witness.
        assert len(solutions) == 2
        for solution in solutions:
            assert setting.is_solution(source, Instance(), solution)

    def test_with_existential_target_tgds_uses_branching(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 1, "U": 2},
            st="A(x) -> T(x)",
            ts="U(x, y) -> R(x, y)",
            t="T(x) -> U(x, y)",
        )
        source = parse_instance("A(a); R(a, b)")
        solutions = list(
            enumerate_solutions(
                setting, source, Instance(),
                budget=Budget(node_cap=50_000, strict=True),
            )
        )
        assert solutions
        for solution in solutions:
            assert setting.is_solution(source, Instance(), solution)

    def test_node_budget_is_deprecated_but_still_caps(self, choice_setting):
        source = parse_instance("A(a); R(a, b)")
        with pytest.warns(DeprecationWarning, match="node_budget"):
            solutions = list(
                enumerate_solutions(
                    choice_setting, source, Instance(), node_budget=50_000
                )
            )
        assert solutions


class TestLemma2Sizes:
    def test_sizes_bounded_by_polynomial(self, choice_setting):
        # Lemma 2: minimal solutions are polynomial in |(I, J)|; here the
        # bound is |J_can| = number of A-facts.
        for n in (1, 3, 5):
            facts = "; ".join(f"A(a{i})" for i in range(n))
            edges = "; ".join(f"R(a{i}, b{i})" for i in range(n))
            source = parse_instance(facts + "; " + edges)
            sizes = minimal_solution_sizes(choice_setting, source, Instance())
            assert sizes
            assert all(size <= n for size in sizes)


class TestBruteForce:
    def test_agrees_with_solver_on_small_inputs(self, choice_setting):
        cases = [
            "A(a); R(a, b)",
            "A(a)",
            "A(a); R(b, c)",
            "A(a); A(b); R(a, c); R(b, c)",
        ]
        for text in cases:
            source = parse_instance(text)
            fast = solve(choice_setting, source, Instance()).exists
            slow = brute_force_exists(choice_setting, source, Instance())
            assert fast == slow, text

    def test_respects_existing_target(self, choice_setting):
        source = parse_instance("A(a); R(a, b)")
        target = parse_instance("T(z, z)")
        assert not brute_force_exists(choice_setting, source, target)

    def test_fresh_values_used_when_needed(self):
        # No Σ_ts: the existential can be witnessed by anything, including
        # a fresh value not in the active domain.
        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2},
            st="A(x) -> T(x, y)",
        )
        assert brute_force_exists(setting, parse_instance("A(a)"), Instance())
