"""Unit tests for the standard chase procedure."""

import pytest

from repro.core.chase import chase, satisfies
from repro.core.instance import Instance
from repro.core.parser import parse_dependencies, parse_dependency, parse_instance
from repro.core.terms import Constant, Null
from repro.exceptions import ChaseFailure, ChaseNonTermination, DependencyError


class TestTgdChase:
    def test_gav_copy(self):
        result = chase(parse_instance("E(a, b)"), [parse_dependency("E(x, y) -> H(x, y)")])
        assert result.instance.count("H") == 1
        assert result.step_count == 1

    def test_transitive_closure(self):
        tgds = [parse_dependency("E(x, y), E(y, z) -> E(x, z)")]
        result = chase(parse_instance("E(a, b); E(b, c); E(c, d)"), tgds)
        assert result.instance.count("E") == 6  # full transitive closure of a path

    def test_existential_creates_null(self):
        result = chase(parse_instance("E(a, b)"), [parse_dependency("E(x, y) -> H(x, w)")])
        h_facts = result.instance.facts("H")
        assert len(h_facts) == 1
        assert len(h_facts[0].nulls()) == 1

    def test_restricted_chase_reuses_witness(self):
        # One H-fact for 'a' satisfies both E-facts from 'a'.
        tgds = [parse_dependency("E(x, y) -> H(x, w)")]
        result = chase(parse_instance("E(a, b); E(a, c)"), tgds)
        assert result.instance.count("H") == 1

    def test_satisfied_tgd_no_steps(self):
        tgds = [parse_dependency("E(x, y) -> H(x, y)")]
        result = chase(parse_instance("E(a, b); H(a, b)"), tgds)
        assert result.step_count == 0

    def test_fresh_nulls_above_existing(self):
        instance = Instance.from_tuples({"E": [("a", Null(10))]})
        result = chase(instance, [parse_dependency("E(x, y) -> H(x, w)")])
        new_nulls = result.instance.nulls() - {Null(10)}
        assert all(null.label > 10 for null in new_nulls)

    def test_provenance_records_added_facts(self):
        result = chase(parse_instance("E(a, b)"), [parse_dependency("E(x, y) -> H(x, y)")])
        assert len(result.steps) == 1
        assert result.steps[0].added_facts[0].relation == "H"

    def test_new_facts_delta(self):
        original = parse_instance("E(a, b)")
        result = chase(original, [parse_dependency("E(x, y) -> H(x, y)")])
        delta = result.new_facts(original)
        assert delta.relations() == ["H"]

    def test_input_not_mutated(self):
        original = parse_instance("E(a, b)")
        chase(original, [parse_dependency("E(x, y) -> H(x, y)")])
        assert original.relations() == ["E"]

    def test_multiple_head_atoms(self):
        tgds = [parse_dependency("E(x, y) -> H(x, w), H(w, y)")]
        result = chase(parse_instance("E(a, b)"), tgds)
        assert result.instance.count("H") == 2
        # Both head facts share the same fresh null.
        nulls = set()
        for fact in result.instance.facts("H"):
            nulls |= fact.nulls()
        assert len(nulls) == 1


class TestEgdChase:
    def test_merge_null_into_constant(self):
        instance = Instance.from_tuples({"P": [("a", Null(0)), ("a", "b")]})
        egd = parse_dependency("P(x, y), P(x, y2) -> y = y2")
        result = chase(instance, [egd])
        assert result.instance == parse_instance("P(a, b)")

    def test_merge_null_into_null(self):
        instance = Instance.from_tuples({"P": [("a", Null(0)), ("a", Null(1))]})
        egd = parse_dependency("P(x, y), P(x, y2) -> y = y2")
        result = chase(instance, [egd])
        assert len(result.instance) == 1
        assert result.instance.nulls() == {Null(0)}  # lower label kept

    def test_constant_clash_fails(self):
        egd = parse_dependency("P(x, y), P(x, y2) -> y = y2")
        with pytest.raises(ChaseFailure):
            chase(parse_instance("P(a, b); P(a, c)"), [egd])

    def test_egd_then_tgd_interaction(self):
        dependencies = parse_dependencies(
            """
            P(x, y), P(x, y2) -> y = y2
            P(x, y) -> Q(y)
            """
        )
        instance = Instance.from_tuples({"P": [("a", Null(0)), ("a", "b")]})
        result = chase(instance, dependencies)
        assert result.instance.tuples("Q") == frozenset({(Constant("b"),)})


class TestTermination:
    def test_weakly_acyclic_terminates(self):
        tgds = [parse_dependency("E(x, y) -> H(x, w)")]
        result = chase(parse_instance("E(a, b)"), tgds)
        assert result.rounds >= 1

    def test_non_weakly_acyclic_hits_budget(self):
        tgds = [parse_dependency("H(x, y) -> H(y, z)")]
        with pytest.raises(ChaseNonTermination):
            chase(parse_instance("H(a, b)"), tgds, max_steps=50)

    def test_disjunctive_rejected(self):
        dep = parse_dependency("E(x, y) -> (R(x)) | (B(x))")
        with pytest.raises(DependencyError):
            chase(parse_instance("E(a, b)"), [dep])


class TestSatisfies:
    def test_tgd_satisfaction(self):
        tgd = parse_dependency("E(x, y) -> H(x, y)")
        assert satisfies(parse_instance("E(a, b); H(a, b)"), [tgd])
        assert not satisfies(parse_instance("E(a, b)"), [tgd])

    def test_tgd_with_existential(self):
        tgd = parse_dependency("E(x, y) -> H(x, w)")
        assert satisfies(parse_instance("E(a, b); H(a, zzz)"), [tgd])
        assert not satisfies(parse_instance("E(a, b); H(b, zzz)"), [tgd])

    def test_egd_satisfaction(self):
        egd = parse_dependency("P(x, y), P(x, y2) -> y = y2")
        assert satisfies(parse_instance("P(a, b)"), [egd])
        assert not satisfies(parse_instance("P(a, b); P(a, c)"), [egd])

    def test_disjunctive_satisfaction(self):
        dep = parse_dependency("E(x, y) -> (R(x)) | (B(x))")
        assert satisfies(parse_instance("E(a, b); B(a)"), [dep])
        assert satisfies(parse_instance("E(a, b); R(a)"), [dep])
        assert not satisfies(parse_instance("E(a, b); R(b)"), [dep])

    def test_disjunctive_with_existential(self):
        dep = parse_dependency("E(x, y) -> (R(x, u)) | (B(x, u))")
        assert satisfies(parse_instance("E(a, b); B(a, q)"), [dep])
        assert not satisfies(parse_instance("E(a, b); B(c, q)"), [dep])

    def test_empty_dependency_set(self):
        assert satisfies(parse_instance("E(a, b)"), [])

    def test_chase_result_satisfies_dependencies(self):
        tgds = parse_dependencies(
            """
            E(x, y) -> H(x, w)
            H(x, y) -> G(y)
            """
        )
        result = chase(parse_instance("E(a, b); E(b, c)"), tgds)
        assert satisfies(result.instance, tgds)


class TestProvenance:
    def test_added_fact_traced_to_step(self):
        from repro.core.atoms import Fact
        from repro.core.terms import Constant

        result = chase(
            parse_instance("E(a, b)"), [parse_dependency("E(x, y) -> H(x, y)")]
        )
        step = result.provenance_of(Fact("H", (Constant("a"), Constant("b"))))
        assert step is not None
        assert step.dependency == parse_dependency("E(x, y) -> H(x, y)")

    def test_input_fact_has_no_provenance(self):
        from repro.core.atoms import Fact
        from repro.core.terms import Constant

        result = chase(
            parse_instance("E(a, b)"), [parse_dependency("E(x, y) -> H(x, y)")]
        )
        assert result.provenance_of(Fact("E", (Constant("a"), Constant("b")))) is None

    def test_unknown_fact_has_no_provenance(self):
        from repro.core.atoms import Fact
        from repro.core.terms import Constant

        result = chase(parse_instance("E(a, b)"), [])
        assert result.provenance_of(Fact("Z", (Constant("q"),))) is None

    def test_fact_rewritten_by_egd_still_traced(self):
        from repro.core.atoms import Fact
        from repro.core.terms import Constant

        dependencies = parse_dependencies(
            """
            E(x, y) -> H(x, w)
            H(x, y), P(x, y2) -> y = y2
            """
        )
        instance = parse_instance("E(a, b); P(a, c)")
        result = chase(instance, dependencies)
        # The tgd adds H(a, _w); the egd then merges _w with c.
        final = Fact("H", (Constant("a"), Constant("c")))
        assert final in result.instance
        step = result.provenance_of(final)
        assert step is not None
        assert step.added_facts  # it was the tgd step
