"""Experiments E9-E10: the Section 4 boundary settings with target
constraints."""

import pytest

from repro.core.instance import Instance
from repro.reductions import (
    egd_boundary_setting,
    egd_boundary_source_instance,
    full_tgd_boundary_setting,
    full_tgd_boundary_source_instance,
    has_k_clique,
)
from repro.solver import solve
from repro.tractability import classify

TRIANGLE = ([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
PATH3 = ([1, 2, 3], [(1, 2), (2, 3)])
EDGE = ([1, 2, 3], [(1, 2)])


class TestEgdBoundary:
    @pytest.mark.parametrize(
        "graph,k",
        [(TRIANGLE, 3), (TRIANGLE, 2), (PATH3, 3), (PATH3, 2), (EDGE, 3), (EDGE, 2)],
    )
    def test_solution_iff_clique(self, graph, k):
        nodes, edges = graph
        want = has_k_clique(nodes, edges, k)
        source = egd_boundary_source_instance(nodes, edges, k)
        got = solve(egd_boundary_setting(), source, Instance()).exists
        assert got == want, (graph, k)

    def test_witness_valid(self):
        setting = egd_boundary_setting()
        source = egd_boundary_source_instance(*TRIANGLE, 3)
        result = solve(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)

    def test_conditions_satisfied_modulo_target_egds(self):
        report = classify(egd_boundary_setting())
        assert report.condition1 and report.condition2_1
        assert report.has_target_constraints
        assert not report.in_ctract

    def test_only_egds_in_sigma_t(self):
        setting = egd_boundary_setting()
        assert setting.target_tgds() == []
        assert len(setting.target_egds()) == 3


class TestFullTgdBoundary:
    @pytest.mark.parametrize(
        "graph,k",
        [(TRIANGLE, 3), (PATH3, 3), (PATH3, 2), (EDGE, 2)],
    )
    def test_solution_iff_clique(self, graph, k):
        nodes, edges = graph
        want = has_k_clique(nodes, edges, k)
        source = full_tgd_boundary_source_instance(nodes, edges, k)
        got = solve(full_tgd_boundary_setting(), source, Instance()).exists
        assert got == want, (graph, k)

    def test_witness_valid(self):
        setting = full_tgd_boundary_setting()
        source = full_tgd_boundary_source_instance(*TRIANGLE, 3)
        result = solve(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)

    def test_conditions_satisfied_modulo_target_tgds(self):
        report = classify(full_tgd_boundary_setting())
        assert report.condition1 and report.condition2_1
        assert report.has_target_constraints
        assert not report.in_ctract

    def test_only_full_tgds_in_sigma_t(self):
        setting = full_tgd_boundary_setting()
        assert setting.target_egds() == []
        assert all(tgd.is_full() for tgd in setting.target_tgds())
        assert setting.target_tgds_weakly_acyclic()
