"""Tests for the PDMS substrate and the Section 2 correspondence (E14)."""

import pytest

from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.query import ConjunctiveQuery
from repro.core.schema import Schema
from repro.core.terms import Variable
from repro.exceptions import SchemaError
from repro.pdms import (
    PDMS,
    Peer,
    StorageDescription,
    assemble_candidate,
    check_correspondence,
    star_instance,
    starred,
    translate_setting,
)
from repro.solver import solve

x, y = Variable("x"), Variable("y")


def identity_query(relation: str) -> ConjunctiveQuery:
    return ConjunctiveQuery([Atom(relation, [x, y])], [x, y])


class TestStorageDescription:
    def test_containment_holds(self):
        description = StorageDescription("R", identity_query("R_star"), "containment")
        local = parse_instance("R_star(a, b)")
        peer_view = parse_instance("R(a, b); R(c, d)")
        assert description.holds(local, peer_view)

    def test_containment_fails(self):
        description = StorageDescription("R", identity_query("R_star"), "containment")
        local = parse_instance("R_star(a, b)")
        assert not description.holds(local, parse_instance("R(c, d)"))

    def test_equality(self):
        description = StorageDescription("R", identity_query("R_star"), "equality")
        local = parse_instance("R_star(a, b)")
        assert description.holds(local, parse_instance("R(a, b)"))
        assert not description.holds(local, parse_instance("R(a, b); R(c, d)"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StorageDescription("R", identity_query("R_star"), "fuzzy")


class TestPeer:
    def test_overlapping_schemas_rejected(self):
        schema = Schema.from_arities({"R": 2})
        with pytest.raises(SchemaError):
            Peer("p", schema, schema)

    def test_storage_must_target_peer_relation(self):
        with pytest.raises(SchemaError):
            Peer(
                "p",
                Schema.from_arities({"R": 2}),
                Schema.from_arities({"R_star": 2}),
                [StorageDescription("Q", identity_query("R_star"), "equality")],
            )

    def test_storage_query_over_local_sources(self):
        with pytest.raises(SchemaError):
            Peer(
                "p",
                Schema.from_arities({"R": 2}),
                Schema.from_arities({"R_star": 2}),
                [StorageDescription("R", identity_query("Other"), "equality")],
            )


class TestTranslation:
    def test_starred_names(self):
        assert starred("E") == "E_star"

    def test_two_peers(self, example1_setting):
        pdms = translate_setting(example1_setting)
        assert [peer.name for peer in pdms.peers] == ["S", "T"]

    def test_source_peer_equality_descriptions(self, example1_setting):
        pdms = translate_setting(example1_setting)
        source_peer = pdms.peer("S")
        assert all(d.kind == "equality" for d in source_peer.storage)

    def test_target_peer_containment_descriptions(self, example1_setting):
        pdms = translate_setting(example1_setting)
        target_peer = pdms.peer("T")
        assert all(d.kind == "containment" for d in target_peer.storage)

    def test_mappings_are_setting_dependencies(self, example1_setting):
        pdms = translate_setting(example1_setting)
        assert len(pdms.mappings) == 2

    def test_star_instance(self):
        replica = star_instance(parse_instance("E(a, b)"))
        assert replica.relations() == ["E_star"]


class TestCorrespondence:
    def test_valid_solution_is_consistent(self, example1_setting, triangle_ish_source):
        check = check_correspondence(
            example1_setting,
            triangle_ish_source,
            Instance(),
            parse_instance("H(a, c)"),
        )
        assert check.is_pde_solution
        assert check.is_pdms_consistent
        assert check.agrees

    def test_invalid_candidate_is_inconsistent(
        self, example1_setting, triangle_ish_source
    ):
        check = check_correspondence(
            example1_setting,
            triangle_ish_source,
            Instance(),
            parse_instance("H(a, b)"),  # missing the forced H(a, c)
        )
        assert not check.is_pde_solution
        assert not check.is_pdms_consistent
        assert check.agrees

    def test_candidate_dropping_target_fact_is_inconsistent(self, example1_setting):
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        target = parse_instance("H(a, c)")
        # A candidate that drops J's fact violates the containment storage
        # description (and J ⊆ J' on the PDE side).
        check = check_correspondence(example1_setting, source, target, Instance())
        assert not check.is_pde_solution
        assert not check.is_pdms_consistent

    def test_agreement_on_solver_witnesses(self, example1_setting):
        for text in ["E(a, a)", "E(a, b); E(b, c); E(a, c)"]:
            source = parse_instance(text)
            result = solve(example1_setting, source, Instance())
            assert result.exists
            check = check_correspondence(
                example1_setting, source, Instance(), result.solution
            )
            assert check.agrees and check.is_pdms_consistent

    def test_candidate_mutating_source_is_inconsistent(self, example1_setting):
        # Build the candidate by hand with an extra source fact: the
        # equality storage description of the source peer must reject it.
        source = parse_instance("E(a, a)")
        pdms = translate_setting(example1_setting)
        local, candidate = assemble_candidate(
            example1_setting, source, Instance(), parse_instance("H(a, a)")
        )
        assert pdms.is_consistent(local, candidate)
        tampered = candidate.copy()
        tampered.add_all(parse_instance("E(q, q)"))
        assert not pdms.is_consistent(local, tampered)


class TestPDMSModel:
    def test_peer_lookup(self, example1_setting):
        pdms = translate_setting(example1_setting)
        assert pdms.peer("S").name == "S"
        with pytest.raises(KeyError):
            pdms.peer("missing")

    def test_schema_unions(self, example1_setting):
        pdms = translate_setting(example1_setting)
        assert set(pdms.peer_schema().names()) == {"E", "H"}
        assert set(pdms.local_schema().names()) == {"E_star", "H_star"}

    def test_overlapping_peers_rejected(self):
        schema = Schema.from_arities({"R": 2})
        local = Schema.from_arities({"R_star": 2})
        peer = Peer("p", schema, local)
        clone = Peer("q", schema, Schema.from_arities({"Q_star": 2}))
        with pytest.raises(SchemaError):
            PDMS([peer, clone], [])
