"""Unit tests for conjunctive queries and UCQs."""

import pytest

from repro.core.atoms import Atom
from repro.core.parser import parse_instance, parse_query
from repro.core.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.core.schema import Schema
from repro.core.terms import Constant, Null, Variable
from repro.core.instance import Instance
from repro.exceptions import DependencyError, SchemaError

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestConjunctiveQuery:
    def test_boolean_holds(self):
        query = parse_query("E(x, y), E(y, z)")
        assert query.holds(parse_instance("E(a, b); E(b, c)"))
        assert not query.holds(parse_instance("E(a, b)"))

    def test_answers(self):
        query = parse_query("q(x) :- E(x, y)")
        answers = query.answers(parse_instance("E(a, b); E(b, c)"))
        assert answers == {(Constant("a"),), (Constant("b"),)}

    def test_answers_deduplicated(self):
        query = parse_query("q(x) :- E(x, y)")
        answers = query.answers(parse_instance("E(a, b); E(a, c)"))
        assert answers == {(Constant("a"),)}

    def test_null_answers_dropped_by_default(self):
        query = parse_query("q(y) :- E(x, y)")
        instance = Instance.from_tuples({"E": [("a", Null(0))]})
        assert query.answers(instance) == set()
        assert query.answers(instance, allow_nulls=True) == {(Null(0),)}

    def test_holds_with_answer_tuple(self):
        query = parse_query("q(x) :- E(x, y)")
        instance = parse_instance("E(a, b)")
        assert query.holds(instance, (Constant("a"),))
        assert not query.holds(instance, (Constant("b"),))

    def test_holds_wrong_arity_rejected(self):
        query = parse_query("q(x) :- E(x, y)")
        with pytest.raises(DependencyError):
            query.holds(parse_instance("E(a, b)"), (Constant("a"), Constant("b")))

    def test_empty_body_rejected(self):
        with pytest.raises(DependencyError):
            ConjunctiveQuery([], [])

    def test_validate(self):
        query = parse_query("E(x, y)")
        query.validate(Schema.from_arities({"E": 2}))
        with pytest.raises(SchemaError):
            query.validate(Schema.from_arities({"F": 2}))

    def test_str(self):
        assert str(parse_query("q(x) :- E(x, y)")) == "q(x) :- E(x, y)"


class TestUCQ:
    def make_ucq(self):
        return UnionOfConjunctiveQueries(
            [parse_query("q(x) :- E(x, y)"), parse_query("q(x) :- F(x)")]
        )

    def test_answers_union(self):
        ucq = self.make_ucq()
        answers = ucq.answers(parse_instance("E(a, b); F(c)"))
        assert answers == {(Constant("a"),), (Constant("c"),)}

    def test_holds(self):
        ucq = self.make_ucq()
        assert ucq.holds(parse_instance("F(c)"), (Constant("c"),))
        assert not ucq.holds(parse_instance("F(c)"), (Constant("a"),))

    def test_mixed_arity_rejected(self):
        with pytest.raises(DependencyError):
            UnionOfConjunctiveQueries(
                [parse_query("q(x) :- E(x, y)"), parse_query("E(x, y)")]
            )

    def test_empty_rejected(self):
        with pytest.raises(DependencyError):
            UnionOfConjunctiveQueries([])

    def test_boolean_ucq(self):
        ucq = UnionOfConjunctiveQueries(
            [parse_query("E(x, x)"), parse_query("F(x)")]
        )
        assert ucq.is_boolean
        assert ucq.holds(parse_instance("F(a)"))
        assert not ucq.holds(parse_instance("E(a, b)"))

    def test_monotonicity(self):
        # UCQ answers only grow when facts are added (Theorem 2 hypothesis).
        ucq = self.make_ucq()
        small = parse_instance("E(a, b)")
        big = parse_instance("E(a, b); F(c)")
        assert ucq.answers(small) <= ucq.answers(big)
