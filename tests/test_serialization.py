"""Round-trip tests for the JSON serialization layer."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_dependency, parse_instance
from repro.core.terms import Null
from repro.io import (
    dependency_to_text,
    dumps_instance,
    dumps_setting,
    loads_instance,
    loads_setting,
)
from repro.reductions import clique_setting, coloring_setting, egd_boundary_setting
from repro.workloads import genomics_setting


class TestInstanceRoundTrip:
    def test_ground(self):
        instance = parse_instance("E(a, b); E(b, c); F(1)")
        assert loads_instance(dumps_instance(instance)) == instance

    def test_with_nulls(self):
        instance = Instance.from_tuples({"E": [("a", Null(3, "y")), (Null(3), "b")]})
        restored = loads_instance(dumps_instance(instance))
        assert restored == instance
        assert restored.nulls() == {Null(3)}

    def test_numeric_and_string_constants(self):
        instance = parse_instance("E(1, 'one'); E(2, 'two')")
        assert loads_instance(dumps_instance(instance)) == instance

    def test_empty(self):
        assert loads_instance(dumps_instance(Instance())) == Instance()

    def test_deterministic_output(self):
        first = parse_instance("E(a, b); E(b, c)")
        second = parse_instance("E(b, c); E(a, b)")
        assert dumps_instance(first) == dumps_instance(second)


class TestDependencyText:
    @pytest.mark.parametrize(
        "text",
        [
            "E(x, z), E(z, y) -> H(x, y)",
            "D(x, y) -> P(x, z, y, w)",
            "P(x, z, y, w), P(x, z2, y2, w2) -> z = z2",
            "E(x, y) -> (R(x), B(y)) | (B(x), R(y))",
            "E(x, 'lit') -> H(x, 42)",
        ],
    )
    def test_round_trip(self, text):
        dependency = parse_dependency(text)
        rendered = dependency_to_text(dependency)
        assert parse_dependency(rendered) == dependency


class TestSettingRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [clique_setting, coloring_setting, egd_boundary_setting, genomics_setting],
    )
    def test_round_trip(self, factory):
        setting = factory()
        restored = loads_setting(dumps_setting(setting))
        assert restored.source_schema == setting.source_schema
        assert restored.target_schema == setting.target_schema
        assert restored.sigma_st == setting.sigma_st
        assert restored.sigma_ts == setting.sigma_ts
        assert restored.sigma_t == setting.sigma_t
        assert restored.name == setting.name

    def test_round_trip_preserves_solver_behavior(self, example1_setting):
        from repro.solver import solve

        restored = loads_setting(dumps_setting(example1_setting))
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        assert (
            solve(restored, source, Instance()).exists
            == solve(example1_setting, source, Instance()).exists
        )
