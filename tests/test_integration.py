"""Integration tests: the three solver implementations and the brute-force
oracle must agree, on hand-built and on randomly generated inputs."""

import random

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.solver import brute_force_exists, solve
from repro.tractability import classify
from repro.workloads import (
    consistent_pair,
    random_full_st_setting,
    random_glav_setting,
    random_instance,
    random_lav_setting,
)


def _tiny_source(setting, seed):
    return random_instance(setting.source_schema, domain_size=3, facts_per_relation=2, seed=seed)


class TestSolverAgreementOnRandomSettings:
    @pytest.mark.parametrize("seed", range(6))
    def test_lav_settings_tractable_vs_valuation(self, seed):
        setting = random_lav_setting(seed=seed)
        assert classify(setting).in_ctract
        for instance_seed in range(3):
            source = _tiny_source(setting, instance_seed)
            tractable = solve(setting, source, Instance(), method="tractable").exists
            valuation = solve(setting, source, Instance(), method="valuation").exists
            assert tractable == valuation, (seed, instance_seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_full_settings_tractable_vs_valuation(self, seed):
        setting = random_full_st_setting(seed=seed)
        for instance_seed in range(3):
            source = _tiny_source(setting, instance_seed)
            tractable = solve(setting, source, Instance(), method="tractable").exists
            valuation = solve(setting, source, Instance(), method="valuation").exists
            assert tractable == valuation, (seed, instance_seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_glav_settings_valuation_vs_branching(self, seed):
        setting = random_glav_setting(seed=seed)
        for instance_seed in range(2):
            source = _tiny_source(setting, instance_seed)
            valuation = solve(setting, source, Instance(), method="valuation").exists
            branching = solve(
                setting, source, Instance(), method="branching", node_budget=200_000
            ).exists
            assert valuation == branching, (seed, instance_seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_witnesses_are_solutions(self, seed):
        setting = random_glav_setting(seed=seed)
        source = _tiny_source(setting, seed)
        result = solve(setting, source, Instance())
        if result.exists:
            assert setting.is_solution(source, Instance(), result.solution)

    @pytest.mark.parametrize("seed", range(4))
    def test_against_brute_force_on_tiny_inputs(self, seed):
        setting = random_lav_setting(
            source_relations=1, target_relations=1, st_tgds=1, ts_tgds=1, seed=seed
        )
        rng = random.Random(seed)
        source = random_instance(
            setting.source_schema, domain_size=2, facts_per_relation=2, seed=rng.randrange(99)
        )
        fast = solve(setting, source, Instance()).exists
        slow = brute_force_exists(setting, source, Instance())
        assert fast == slow, seed


class TestConsistentPairsRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_solver_handles_generated_pairs(self, seed):
        setting = random_lav_setting(seed=seed)
        source, target = consistent_pair(setting, domain_size=4, facts_per_relation=3, seed=seed)
        result = solve(setting, source, target)
        if result.exists:
            assert setting.is_solution(source, target, result.solution)


class TestEndToEndScenario:
    def test_genomics_pipeline(self):
        """Full pipeline: generate data, dispatch, solve, verify, query."""
        from repro.core.parser import parse_query
        from repro.solver import certain_answers
        from repro.workloads import generate_genomics_data, genomics_setting

        setting = genomics_setting()
        source, target = generate_genomics_data(proteins=6, seed=11)
        result = solve(setting, source, target)
        assert result.exists and result.method == "tractable"

        # Every source protein accession is certainly imported.
        query = parse_query("q(acc) :- local_protein(acc, name, org)")
        answers = certain_answers(setting, query, source, target)
        source_accessions = {row[0] for row in source.tuples("protein")}
        assert {answer[0] for answer in answers.answers} == source_accessions


class TestDisjunctiveCrossSolver:
    @pytest.mark.parametrize("seed", range(3))
    def test_coloring_valuation_vs_branching(self, seed):
        # Small graphs: the branching solver's witness space for the
        # disjunctive setting grows very fast with the node count.
        from repro.reductions import coloring_setting, coloring_source_instance
        from repro.workloads import erdos_renyi

        setting = coloring_setting()
        nodes, edges = erdos_renyi(4, 0.6, seed=seed)
        source = coloring_source_instance(nodes, edges)
        valuation = solve(setting, source, Instance(), method="valuation").exists
        branching = solve(
            setting, source, Instance(), method="branching", node_budget=200_000
        ).exists
        assert valuation == branching, seed

    def test_coloring_witness_checked_by_is_solution(self):
        from repro.reductions import coloring_setting, coloring_source_instance
        from repro.workloads import cycle_graph

        setting = coloring_setting()
        source = coloring_source_instance(*cycle_graph(7))
        result = solve(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)


class TestMinimizePipeline:
    def test_solve_minimize_core_pipeline(self):
        """solve -> Lemma-2 minimize -> core: each stage preserves
        solution-hood and never grows the witness."""
        from repro.core import core
        from repro.solver import minimize_solution
        from repro.workloads import generate_genomics_data, genomics_setting

        setting = genomics_setting()
        source, target = generate_genomics_data(proteins=5, seed=8)
        witness = solve(setting, source, target).solution
        bloated = witness.union(witness)  # no-op union; then add real bloat
        trimmed = minimize_solution(setting, source, target, bloated)
        cored = core(trimmed, protect=target)
        assert setting.is_solution(source, target, trimmed)
        assert setting.is_solution(source, target, cored)
        assert len(cored) <= len(trimmed) <= len(bloated)
