"""Tests for the network-simulator building blocks.

Fault schedules (the multi-link generalization of ``faulty_feed``), the
stamped idempotent ingestion protocol on :class:`SyncSession`, the
simulated transport, and peer nodes.  End-to-end scenario runs live in
``test_net_sim.py``.
"""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SimulationError
from repro.net import Delta, Message, PeerNode, Scenario, SimTransport
from repro.net.scenarios import Heal, Partition, registry_setting
from repro.runtime import FaultClock, FaultSchedule, SessionJournal, faulty_feed
from repro.sync import Stamp, SyncSession


@pytest.fixture
def setting() -> PDESetting:
    return registry_setting()


SNAPSHOTS = [
    parse_instance("reg(a, 1)"),
    parse_instance("reg(a, 1); reg(b, 2)"),
    parse_instance("reg(b, 2); reg(c, 3)"),
    parse_instance("reg(c, 3); reg(d, 4)"),
]


class TestFaultSchedule:
    def test_explicit_indices(self):
        schedule = FaultSchedule(drop=[1], duplicate=[2], reorder=[0], delay={3: 0.5})
        assert schedule.decide(1).drop
        assert schedule.decide(2).duplicate
        assert schedule.decide(0).reorder
        assert schedule.decide(3).delay == 0.5
        assert not schedule.decide(4).faulty

    def test_seeded_is_deterministic_and_order_independent(self):
        schedule = FaultSchedule.seeded(seed=7, drop=0.3, duplicate=0.3, reorder=0.3)
        forward = [schedule.decide(i) for i in range(50)]
        backward = [schedule.decide(i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))
        again = FaultSchedule.seeded(seed=7, drop=0.3, duplicate=0.3, reorder=0.3)
        assert forward == [again.decide(i) for i in range(50)]

    def test_different_seeds_differ(self):
        a = FaultSchedule.seeded(seed=1, drop=0.5)
        b = FaultSchedule.seeded(seed=2, drop=0.5)
        decisions_a = [a.decide(i).drop for i in range(64)]
        decisions_b = [b.decide(i).drop for i in range(64)]
        assert decisions_a != decisions_b

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule.seeded(seed=0, drop=1.5)
        with pytest.raises(ValueError):
            FaultSchedule.seeded(seed=0, duplicate=-0.1)

    def test_apply_reorders_adjacent_items(self):
        items = list(range(5))
        schedule = FaultSchedule(reorder=[1])
        assert list(schedule.apply(items)) == [0, 2, 1, 3, 4]

    def test_apply_flushes_held_items_at_stream_end(self):
        schedule = FaultSchedule(reorder=[2])
        assert list(schedule.apply([0, 1, 2])) == [0, 1, 2]


class TestFaultyFeedReorder:
    def test_reorder_swaps_delivery_order(self):
        delivered = list(faulty_feed(SNAPSHOTS, reorder=[1]))
        assert delivered == [SNAPSHOTS[0], SNAPSHOTS[2], SNAPSHOTS[1], SNAPSHOTS[3]]

    def test_sync_converges_under_reordering(self, setting):
        # An authoritative-snapshot session converges even when deliveries
        # swap, because the final snapshot always lands last... unless the
        # reordered one IS the final snapshot, which apply() flushes last
        # anyway — here the stale-rejection protocol is not even needed.
        faulty = SyncSession(setting)
        for snapshot in faulty_feed(SNAPSHOTS, drop=[0], duplicate=[3], reorder=[1]):
            assert faulty.sync(snapshot).ok
        clean = SyncSession(setting)
        assert clean.sync(SNAPSHOTS[-1]).ok
        assert faulty.state() == clean.state()


class TestStampedIngestion:
    def test_stamps_order_lexicographically(self):
        assert Stamp(1, 2) < Stamp(1, 3) < Stamp(2, 1)
        assert str(Stamp(2, 7)) == "2.7"

    def test_stale_stamp_is_skipped(self, setting):
        session = SyncSession(setting)
        assert session.sync(SNAPSHOTS[1], stamp=Stamp(1, 2)).ok
        before = session.state()
        outcome = session.sync(SNAPSHOTS[0], stamp=Stamp(1, 1))
        assert outcome.ok and outcome.stale
        assert session.state() == before
        assert session.last_stamp == Stamp(1, 2)

    def test_duplicate_stamp_is_skipped(self, setting):
        session = SyncSession(setting)
        assert session.sync(SNAPSHOTS[0], stamp=Stamp(1, 1)).ok
        outcome = session.sync(SNAPSHOTS[0], stamp=Stamp(1, 1))
        assert outcome.stale
        assert session.rounds == 1  # a skipped replay is not a round

    def test_higher_epoch_wins_over_higher_seq(self, setting):
        # A publisher restart resets seq but bumps epoch; its messages must
        # not be mistaken for stale ones.
        session = SyncSession(setting)
        assert session.sync(SNAPSHOTS[0], stamp=Stamp(1, 9)).ok
        outcome = session.sync(SNAPSHOTS[1], stamp=Stamp(2, 1))
        assert outcome.ok and not outcome.stale
        assert session.last_stamp == Stamp(2, 1)

    def test_unstamped_rounds_still_work(self, setting):
        session = SyncSession(setting)
        assert session.sync(SNAPSHOTS[0]).ok
        assert session.last_stamp is None

    def test_watermark_survives_resume(self, tmp_path, setting):
        journal = SessionJournal(tmp_path / "peer.journal")
        session = SyncSession(setting, journal=journal)
        assert session.sync(SNAPSHOTS[1], stamp=Stamp(1, 2)).ok
        del session

        restored = SyncSession.resume(journal)
        assert restored.last_stamp == Stamp(1, 2)
        # A redelivery from before the crash replays as a stale no-op.
        assert restored.sync(SNAPSHOTS[0], stamp=Stamp(1, 1)).stale


class TestSimTransport:
    def make(self, **kwargs):
        clock = FaultClock()
        return clock, SimTransport(clock, latency=0.1, **kwargs)

    def message(self, seq: int, recipient: str = "peer") -> Message:
        return Message("origin", recipient, Stamp(1, seq), SNAPSHOTS[0])

    def drain(self, transport) -> list[tuple[float, Message]]:
        out = []
        while transport.pending():
            out.append(transport.pop_delivery())
        return out

    def test_fifo_delivery_after_latency(self):
        clock, transport = self.make()
        transport.send(self.message(1))
        transport.send(self.message(2))
        deliveries = self.drain(transport)
        assert [m.stamp.seq for _, m in deliveries] == [1, 2]
        assert all(at == pytest.approx(0.1) for at, _ in deliveries)

    def test_reorder_is_overtaking(self):
        clock, transport = self.make()
        transport.set_schedule("origin", "peer", FaultSchedule(reorder=[0]))
        transport.send(self.message(1))  # reordered: +4x latency
        transport.send(self.message(2))
        assert [m.stamp.seq for _, m in self.drain(transport)] == [2, 1]
        assert transport.stats["reordered"] == 1

    def test_duplicate_arrives_twice(self):
        clock, transport = self.make()
        transport.set_schedule("origin", "peer", FaultSchedule(duplicate=[0]))
        transport.send(self.message(1))
        deliveries = self.drain(transport)
        assert [m.stamp.seq for _, m in deliveries] == [1, 1]
        assert deliveries[0][0] < deliveries[1][0]

    def test_drop_never_delivers(self):
        clock, transport = self.make()
        transport.set_schedule("origin", "peer", FaultSchedule(drop=[0]))
        transport.send(self.message(1))
        assert transport.pending() == 0
        assert transport.stats["dropped"] == 1

    def test_partition_drops_at_send_time(self):
        clock, transport = self.make()
        transport.partition([{"origin"}, {"peer"}])
        transport.send(self.message(1))
        assert transport.pending() == 0
        assert transport.stats["partition_dropped"] == 1
        transport.heal()
        transport.send(self.message(2))
        assert transport.pending() == 1

    def test_in_flight_messages_survive_a_partition(self):
        # Partition semantics are send-time: a message already on the wire
        # still arrives (the window stale rejection exists for).
        clock, transport = self.make()
        transport.send(self.message(1))
        transport.partition([{"origin"}, {"peer"}])
        assert [m.stamp.seq for _, m in self.drain(transport)] == [1]

    def test_unlisted_peers_share_the_remainder_group(self):
        clock, transport = self.make()
        transport.partition([{"origin"}])
        assert not transport.connected("origin", "peer")
        assert transport.connected("peer", "other")  # both unlisted

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            SimTransport(FaultClock(), latency=0.0)

    def test_facts_sent_counts_payload_sizes(self):
        clock, transport = self.make()
        transport.send(self.message(1))  # SNAPSHOTS[0]: 1 fact
        delta = Delta(
            base=Stamp(1, 1),
            added=parse_instance("reg(b, 2)"),
            withdrawn=parse_instance("reg(a, 1)"),
        )
        transport.send(Message("origin", "peer", Stamp(1, 2), delta))
        assert transport.stats["facts_sent"] == 1 + 2  # |added| + |withdrawn|

    def test_bounded_queue_evicts_oldest_for_never_draining_subscriber(self):
        from repro.obs import MetricsRegistry, Tracer

        tracer, metrics = Tracer(), MetricsRegistry()
        clock = FaultClock()
        transport = SimTransport(
            clock, latency=0.1, max_queue=3, tracer=tracer, metrics=metrics
        )
        # Nobody ever pops deliveries for "peer": the backlog must stay
        # bounded, shedding the oldest (superseded) snapshots.
        for seq in range(1, 11):
            transport.send(self.message(seq))
        assert transport.pending() == 3
        assert transport.stats["queue_evicted"] == 7
        assert metrics.counter("net.queue_evicted").value == 7
        events = [
            e for e in tracer.orphan_events if e["name"] == "net.queue_evicted"
        ]
        assert len(events) == 7
        assert events[0]["attributes"]["depth"] == 3
        # The newest snapshots survive — the stream degraded, not died.
        assert [m.stamp.seq for _, m in self.drain(transport)] == [8, 9, 10]

    def test_bounded_queue_is_per_recipient(self):
        clock, transport = self.make(max_queue=2)
        for seq in range(1, 4):
            transport.send(self.message(seq, recipient="peer-a"))
            transport.send(self.message(seq, recipient="peer-b"))
        assert transport.pending() == 4  # two per recipient, not two total
        assert transport.stats["queue_evicted"] == 2

    def test_facts_sent_includes_fault_losses_but_not_partitions(self):
        # A dropped message was transmitted (and wasted the wire); a
        # partitioned one never left the sender.
        clock, transport = self.make()
        transport.set_schedule(
            "origin", "peer", FaultSchedule(drop=[0], duplicate=[1])
        )
        transport.send(self.message(1))  # dropped in transit: counted
        transport.send(self.message(2))  # duplicated: counted twice
        assert transport.stats["facts_sent"] == 3
        transport.partition([{"origin"}, {"peer"}])
        transport.send(self.message(3))  # refused at connect time
        assert transport.stats["facts_sent"] == 3


class TestPeerNode:
    def offer(self, node, seq: int, snapshot) -> object:
        return node.receive(Message("origin", node.name, Stamp(1, seq), snapshot))

    def test_receive_applies_and_counts(self, setting):
        node = PeerNode("peer", setting)
        assert self.offer(node, 1, SNAPSHOTS[0]).ok
        assert self.offer(node, 1, SNAPSHOTS[0]).stale
        assert node.stats == {
            "applied": 1, "stale": 1, "rejected": 0, "degraded": 0,
            "chain_broken": 0,
        }
        assert node.stamp == Stamp(1, 1)

    def test_behind_tracks_the_watermark(self, setting):
        node = PeerNode("peer", setting)
        assert node.behind(Stamp(1, 1))
        self.offer(node, 1, SNAPSHOTS[0])
        assert not node.behind(Stamp(1, 1))
        assert node.behind(Stamp(1, 2))

    def test_crash_loses_memory_and_restart_resumes_from_journal(
        self, tmp_path, setting
    ):
        journal = SessionJournal(tmp_path / "peer.journal")
        node = PeerNode("peer", setting, journal=journal)
        self.offer(node, 1, SNAPSHOTS[1])
        state = node.state()
        node.crash()
        assert node.crashed
        node.restart()
        assert node.state() == state
        assert node.stamp == Stamp(1, 1)

    def test_journal_free_restart_starts_empty(self, setting):
        node = PeerNode("peer", setting)
        self.offer(node, 1, SNAPSHOTS[1])
        node.crash()
        node.restart()
        assert node.stamp is None
        assert len(node.state()) == 0

    def test_misuse_raises_simulation_error(self, setting):
        node = PeerNode("peer", setting)
        with pytest.raises(SimulationError):
            node.restart()  # not crashed
        node.crash()
        with pytest.raises(SimulationError):
            node.crash()  # already crashed
        with pytest.raises(SimulationError):
            node.state()
        with pytest.raises(SimulationError):
            self.offer(node, 1, SNAPSHOTS[0])

    def test_delta_payload_routes_through_sync_delta(self, setting):
        node = PeerNode("peer", setting)
        assert self.offer(node, 1, SNAPSHOTS[1]).ok  # reg(a,1); reg(b,2)
        delta = Delta(
            base=Stamp(1, 1),
            added=parse_instance("reg(c, 3)"),
            withdrawn=parse_instance("reg(a, 1)"),
        )
        outcome = node.receive(Message("origin", "peer", Stamp(1, 2), delta))
        assert outcome.ok and outcome.delta
        assert node.state() == parse_instance("db(b, 2); db(c, 3)")
        assert node.stamp == Stamp(1, 2)
        assert node.stats["applied"] == 2

    def test_broken_chain_is_counted_not_applied(self, setting):
        node = PeerNode("peer", setting)
        assert self.offer(node, 1, SNAPSHOTS[1]).ok
        stranded = Delta(
            base=Stamp(1, 2),  # the peer never saw 1.2
            added=parse_instance("reg(d, 4)"),
            withdrawn=Instance(),
        )
        outcome = node.receive(Message("origin", "peer", Stamp(1, 3), stranded))
        assert outcome.chain_broken and not outcome.ok
        assert node.stats["chain_broken"] == 1
        assert node.stats["rejected"] == 0
        assert node.stamp == Stamp(1, 1)  # nothing committed

    def test_pinned_instance_is_copied_at_the_boundary(self, setting):
        # Scenarios hand the same pinned Instance to the node and the
        # convergence oracle; the node must not alias the caller's copy.
        pinned = parse_instance("db(z, 9)")
        node = PeerNode("peer", setting, pinned=pinned)
        for fact in parse_instance("db(q, 7)"):
            pinned.add(fact)
        assert node.pinned == parse_instance("db(z, 9)")
        for fact in parse_instance("db(q, 7)"):
            assert fact not in node.state()


class TestScenarioValidation:
    def test_publisher_cannot_subscribe(self, setting):
        with pytest.raises(SimulationError, match="publisher"):
            Scenario(
                name="bad", description="", setting=setting,
                snapshots=SNAPSHOTS, peers=["origin"], publisher="origin",
            )

    def test_events_must_reference_known_peers(self, setting):
        from repro.net import Crash

        with pytest.raises(SimulationError, match="unknown peer"):
            Scenario(
                name="bad", description="", setting=setting,
                snapshots=SNAPSHOTS, peers=["peer"],
                events=[Crash(1.0, "ghost")],
            )

    def test_fault_links_must_reference_known_peers(self, setting):
        with pytest.raises(SimulationError, match="fault link"):
            Scenario(
                name="bad", description="", setting=setting,
                snapshots=SNAPSHOTS, peers=["peer"],
                faults={("origin", "ghost"): FaultSchedule(drop=[0])},
            )

    def test_empty_snapshots_rejected(self, setting):
        with pytest.raises(SimulationError, match="publishes nothing"):
            Scenario(
                name="bad", description="", setting=setting,
                snapshots=[], peers=["peer"],
            )

    def test_partition_and_heal_accept_any_groups(self, setting):
        scenario = Scenario(
            name="ok", description="", setting=setting,
            snapshots=SNAPSHOTS, peers=["p1", "p2"],
            events=[Partition(1.0, {"origin", "p1"}, {"p2"}), Heal(2.0)],
        )
        assert scenario.duration == pytest.approx(3.0)
