"""Experiment E11: the 3-colorability reduction with disjunctive Σ_ts."""

import itertools

import pytest

from repro.core.instance import Instance
from repro.reductions import (
    coloring_setting,
    coloring_source_instance,
    is_three_colorable,
)
from repro.solver import solve
from repro.tractability import classify
from repro.workloads import cycle_graph


class TestReductionCorrectness:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (([1, 2, 3], [(1, 2), (2, 3), (1, 3)]), True),  # triangle
            ((list(range(4)), list(itertools.combinations(range(4), 2))), False),  # K4
            (cycle_graph(5), True),  # odd cycle
            (([1, 2], [(1, 2)]), True),  # single edge
        ],
    )
    def test_solution_iff_three_colorable(self, graph, expected):
        nodes, edges = graph
        assert is_three_colorable(nodes, edges) is expected
        source = coloring_source_instance(nodes, edges)
        assert solve(coloring_setting(), source, Instance()).exists is expected

    def test_witness_valid(self):
        setting = coloring_setting()
        nodes, edges = cycle_graph(5)
        source = coloring_source_instance(nodes, edges)
        result = solve(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)

    def test_witness_encodes_coloring(self):
        setting = coloring_setting()
        nodes, edges = [1, 2, 3], [(1, 2), (2, 3), (1, 3)]
        source = coloring_source_instance(nodes, edges)
        result = solve(setting, source, Instance())
        colors = {}
        for fact in result.solution.facts("C"):
            colors[fact.args[0]] = fact.args[1]
        # Adjacent nodes received distinct colors.
        for fact in result.solution.facts("Ep"):
            u, v = fact.args
            assert colors[u] != colors[v]


class TestSettingShape:
    def test_disjunction_excludes_from_ctract(self):
        report = classify(coloring_setting())
        assert report.has_disjunctive_ts
        assert not report.in_ctract

    def test_conditions_1_and_2_2_hold(self):
        # The paper's observation: the non-disjunctive conditions of
        # Definition 9 are all satisfied — disjunction alone is to blame.
        report = classify(coloring_setting())
        assert report.condition1
        assert report.condition2_2

    def test_no_target_constraints(self):
        assert not coloring_setting().has_target_constraints

    def test_six_color_disjuncts(self):
        setting = coloring_setting()
        disjunctive = [d for d in setting.sigma_ts if hasattr(d, "disjuncts")]
        assert len(disjunctive) == 1
        assert len(disjunctive[0].disjuncts) == 6


class TestOracle:
    def test_empty_graph_colorable(self):
        assert is_three_colorable([], [])

    def test_k4_not_colorable(self):
        nodes = list(range(4))
        assert not is_three_colorable(nodes, list(itertools.combinations(nodes, 2)))

    def test_bipartite_colorable(self):
        from repro.workloads import bipartite_graph

        nodes, edges = bipartite_graph(3, 3, 0.8, seed=1)
        assert is_three_colorable(nodes, edges)
