"""Tests for core computation (reference [7] machinery)."""

from repro.core.cores import core, is_core
from repro.core.homomorphism import has_instance_homomorphism
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.terms import Null


def with_nulls(*rows):
    return Instance.from_tuples({"E": list(rows)})


class TestCore:
    def test_ground_instance_is_its_own_core(self):
        instance = parse_instance("E(a, b); E(b, c)")
        assert core(instance) == instance
        assert is_core(instance)

    def test_redundant_null_fact_removed(self):
        # E(a, _n) is subsumed by E(a, b).
        instance = with_nulls(("a", Null(0)), ("a", "b"))
        minimized = core(instance)
        assert minimized == parse_instance("E(a, b)")

    def test_null_fact_without_subsumer_kept(self):
        instance = with_nulls(("a", Null(0)))
        assert core(instance) == instance

    def test_chain_of_redundancy(self):
        # Both null facts fold onto the ground fact.
        instance = with_nulls(("a", Null(0)), ("a", Null(1)), ("a", "b"))
        assert core(instance) == parse_instance("E(a, b)")

    def test_null_to_null_folding(self):
        # Two parallel null facts with no ground anchor: they fold onto one.
        instance = with_nulls(("a", Null(0)), ("a", Null(1)))
        minimized = core(instance)
        assert len(minimized) == 1
        assert len(minimized.nulls()) == 1

    def test_connected_block_folds_as_unit(self):
        # E(_x, _y), E(_y, _x) can fold onto a ground 2-cycle.
        instance = Instance.from_tuples(
            {"E": [(Null(0), Null(1)), (Null(1), Null(0)), ("a", "b"), ("b", "a")]}
        )
        assert core(instance) == parse_instance("E(a, b); E(b, a)")

    def test_triangle_with_null_path(self):
        # Classic: a null path of length 2 folds onto a self-loop.
        instance = Instance.from_tuples(
            {"E": [(Null(0), Null(1)), (Null(1), Null(2)), ("a", "a")]}
        )
        assert core(instance) == parse_instance("E(a, a)")

    def test_core_is_homomorphic_image(self):
        instance = Instance.from_tuples(
            {"E": [(Null(0), Null(1)), ("a", Null(2)), ("a", "b"), ("c", "d")]}
        )
        minimized = core(instance)
        assert instance.contains_instance(minimized)
        assert has_instance_homomorphism(instance, minimized)

    def test_core_idempotent(self):
        instance = Instance.from_tuples(
            {"E": [(Null(0), Null(1)), ("a", Null(2)), ("a", "b")]}
        )
        once = core(instance)
        assert core(once) == once
        assert is_core(once)

    def test_protect_keeps_facts(self):
        instance = with_nulls(("a", Null(0)), ("a", "b"))
        protected = with_nulls(("a", Null(0)))
        minimized = core(instance, protect=protected)
        assert minimized == instance  # the redundant fact is protected

    def test_cross_relation_block(self):
        instance = Instance.from_tuples(
            {
                "E": [("a", Null(0)), ("a", "b")],
                "F": [(Null(0),), ("b",)],
            }
        )
        minimized = core(instance)
        assert minimized == parse_instance("E(a, b); F(b)")

    def test_empty_instance(self):
        assert core(Instance()) == Instance()

    def test_isolated_incomparable_nulls_kept(self):
        instance = Instance.from_tuples(
            {"E": [("a", Null(0))], "F": [(Null(1),)]}
        )
        assert core(instance) == instance


class TestCoreOfSolutions:
    def test_core_of_witness_is_solution(self):
        """Solutions stay solutions after coring (Σ_ts is anti-monotone and
        the Σ_st witnesses survive as homomorphic images)."""
        from repro import PDESetting, solve

        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2},
            st="A(x) -> T(x, y)",
        )
        source = parse_instance("A(a); A(b)")
        witness = solve(setting, source, Instance()).solution
        bloated = witness.union(
            Instance.from_tuples({"T": [("a", Null(901)), ("a", Null(902))]})
        )
        assert setting.is_solution(source, Instance(), bloated)
        minimized = core(bloated)
        assert setting.is_solution(source, Instance(), minimized)
        assert len(minimized) <= len(witness)
