"""Tests for the fixit engine: JSON span resolution and fix application.

The engine turns structural :class:`~repro.analysis.JsonEdit` paths into
genuine text splices with an offset-tracking scanner; these tests pin the
span semantics (comma handling, formatting preservation, skip-don't-guess
on stale paths) and the ``lint --fix`` round-trip the acceptance criteria
require: a fixture carrying a duplicate-dependency and an
unhealed-partition finding re-lints clean after applying its fixes.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Diagnostic,
    Fix,
    JsonEdit,
    analyze_scenario_text,
    analyze_text,
    apply_fixes,
    fix_diff,
)
from repro.analysis.fixes import resolve_edits

DOC = json.dumps(
    {
        "name": "t",
        "source": {"E": 2, "F": 1},
        "sigma_st": ["a", "b", "c"],
        "empty": [],
    },
    indent=2,
)


def _apply(text: str, *edits: JsonEdit) -> str:
    spans, skipped = resolve_edits(text, edits)
    assert skipped == 0
    for span in sorted(spans, key=lambda s: s.start, reverse=True):
        text = text[: span.start] + span.replacement + text[span.end :]
    return text


class TestSpanResolution:
    def test_remove_middle_array_item(self):
        fixed = json.loads(_apply(DOC, JsonEdit("remove", ("sigma_st", 1))))
        assert fixed["sigma_st"] == ["a", "c"]

    def test_remove_last_array_item_eats_preceding_comma(self):
        fixed = _apply(DOC, JsonEdit("remove", ("sigma_st", 2)))
        decoded = json.loads(fixed)
        assert decoded["sigma_st"] == ["a", "b"]

    def test_remove_first_array_item(self):
        fixed = json.loads(_apply(DOC, JsonEdit("remove", ("sigma_st", 0))))
        assert fixed["sigma_st"] == ["b", "c"]

    def test_remove_object_member(self):
        fixed = json.loads(_apply(DOC, JsonEdit("remove", ("source", "E"))))
        assert fixed["source"] == {"F": 1}

    def test_remove_last_object_member(self):
        fixed = json.loads(_apply(DOC, JsonEdit("remove", ("source", "F"))))
        assert fixed["source"] == {"E": 2}

    def test_replace_value(self):
        fixed = json.loads(_apply(DOC, JsonEdit("replace", ("source", "E"), 3)))
        assert fixed["source"]["E"] == 3

    def test_append_to_array(self):
        fixed = json.loads(_apply(DOC, JsonEdit("append", ("sigma_st",), "d")))
        assert fixed["sigma_st"] == ["a", "b", "c", "d"]

    def test_append_to_empty_array(self):
        fixed = json.loads(_apply(DOC, JsonEdit("append", ("empty",), {"x": 1})))
        assert fixed["empty"] == [{"x": 1}]

    def test_untouched_formatting_is_preserved(self):
        fixed = _apply(DOC, JsonEdit("remove", ("sigma_st", 1)))
        # Everything before the edited array keeps its bytes.
        prefix = DOC[: DOC.index('"sigma_st"')]
        assert fixed.startswith(prefix)

    def test_stale_path_is_skipped_not_guessed(self):
        spans, skipped = resolve_edits(DOC, [JsonEdit("remove", ("nope", 0))])
        assert spans == [] and skipped == 1
        spans, skipped = resolve_edits(
            DOC, [JsonEdit("remove", ("sigma_st", 9))]
        )
        assert spans == [] and skipped == 1

    def test_overlapping_edits_keep_first(self):
        spans, skipped = resolve_edits(
            DOC,
            [
                JsonEdit("remove", ("source",)),
                JsonEdit("replace", ("source", "E"), 9),
            ],
        )
        assert len(spans) == 1 and skipped == 1


class TestApplyFixes:
    def test_apply_counts_fixes(self):
        diagnostic = Diagnostic(
            "PDE201",
            "warning",
            "dup",
            fixes=(Fix("drop it", (JsonEdit("remove", ("sigma_st", 1)),)),),
        )
        fixed, applied, skipped = apply_fixes(DOC, [diagnostic])
        assert applied == 1 and skipped == 0
        assert json.loads(fixed)["sigma_st"] == ["a", "c"]

    def test_diagnostics_without_fixes_are_noops(self):
        diagnostic = Diagnostic("PDE101", "warning", "boundary")
        fixed, applied, skipped = apply_fixes(DOC, [diagnostic])
        assert fixed == DOC and applied == 0 and skipped == 0

    def test_fix_diff_has_headers(self):
        new = _apply(DOC, JsonEdit("remove", ("sigma_st", 1)))
        diff = fix_diff("doc.json", DOC, new)
        assert diff.startswith("--- doc.json")
        assert "(fixed)" in diff and '-    "b",' in diff


@pytest.fixture
def broken_scenario_text() -> str:
    """A scenario with a PDE201 (duplicate dep) and PDE301 (unhealed
    partition) finding — both carrying fixes."""
    return json.dumps(
        {
            "kind": "scenario",
            "name": "broken",
            "setting": {
                "name": "registry",
                "source": {"reg": 2},
                "target": {"db": 2},
                "sigma_st": ["reg(k, v) -> db(k, v)", "reg(k, v) -> db(k, v)"],
                "sigma_ts": ["db(k, v) -> reg(k, v)"],
            },
            "snapshots": ["reg(a, 1)", "reg(a, 1); reg(b, 2)"],
            "peers": ["p1", "p2"],
            "publisher": "pub",
            "events": [
                {
                    "event": "partition",
                    "at": 0.5,
                    "groups": [["pub", "p1"], ["p2"]],
                }
            ],
        },
        indent=2,
    )


class TestFixRoundTrip:
    """The acceptance criterion: fixes re-lint clean."""

    def test_broken_scenario_relints_clean_after_fixes(
        self, broken_scenario_text
    ):
        report = analyze_scenario_text(broken_scenario_text)
        assert set(report.codes()) == {"PDE201", "PDE301"}
        assert len(report.fixable()) == 2
        fixed, applied, skipped = apply_fixes(
            broken_scenario_text, report.diagnostics
        )
        assert applied == 2 and skipped == 0
        assert analyze_scenario_text(fixed).clean

    def test_setting_fix_roundtrip(self):
        text = json.dumps(
            {
                "name": "dup",
                "source": {"E": 2},
                "target": {"H": 2},
                "sigma_st": ["E(x, y) -> H(x, y)", "E(x, y) -> H(x, y)"],
            },
            indent=2,
        )
        report = analyze_text(text)
        assert "PDE201" in report.codes()
        fixed, applied, _skipped = apply_fixes(text, report.diagnostics)
        assert applied >= 1
        after = analyze_text(fixed)
        assert "PDE201" not in after.codes()
