"""The production matcher vs a simple reference implementation.

After the iterative rewrite (explicit backtracking stack + positional
index), this suite pins the matcher to a deliberately naive recursive
reference on randomized inputs: same match sets, always.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom, Fact
from repro.core.homomorphism import iter_homomorphisms
from repro.core.instance import Instance
from repro.core.terms import Constant, Variable, is_variable

MATCH_SETTINGS = settings(
    max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def reference_matches(atoms, instance, partial=None):
    """Naive cartesian-product matcher used as the oracle."""
    results = []

    def extend(index, assignment):
        if index == len(atoms):
            results.append(dict(assignment))
            return
        atom = atoms[index]
        for row in instance.tuples(atom.relation):
            candidate = dict(assignment)
            ok = True
            for term, value in zip(atom.args, row):
                if is_variable(term):
                    if term in candidate and candidate[term] != value:
                        ok = False
                        break
                    candidate[term] = value
                elif term != value:
                    ok = False
                    break
            if ok:
                extend(index + 1, candidate)

    extend(0, dict(partial) if partial else {})
    return results


def canonical(matches):
    return sorted(
        [tuple(sorted((v.name, repr(val)) for v, val in match.items()))
         for match in matches]
    )


values = st.sampled_from([Constant("a"), Constant("b"), Constant("c")])
variables = st.sampled_from([Variable(name) for name in "xyzuv"])
terms = st.one_of(values, variables)

atoms_strategy = st.lists(
    st.one_of(
        st.builds(lambda a, b: Atom("E", (a, b)), terms, terms),
        st.builds(lambda a: Atom("F", (a,)), terms),
    ),
    min_size=1,
    max_size=3,
)

instances_strategy = st.builds(
    lambda e_rows, f_rows: Instance(
        [Fact("E", row) for row in e_rows] + [Fact("F", row) for row in f_rows]
    ),
    st.lists(st.tuples(values, values), max_size=6),
    st.lists(st.tuples(values), max_size=3),
)


class TestAgainstReference:
    @MATCH_SETTINGS
    @given(atoms_strategy, instances_strategy)
    def test_same_match_sets(self, atoms, instance):
        fast = list(iter_homomorphisms(atoms, instance))
        slow = reference_matches(atoms, instance)
        assert canonical(fast) == canonical(slow)

    @MATCH_SETTINGS
    @given(atoms_strategy, instances_strategy, values)
    def test_same_match_sets_with_partial(self, atoms, instance, pinned):
        partial = {Variable("x"): pinned}
        fast = list(iter_homomorphisms(atoms, instance, partial))
        slow = reference_matches(atoms, instance, partial)
        assert canonical(fast) == canonical(slow)


class TestMatcherEdgeCases:
    def test_empty_conjunction(self):
        instance = Instance([Fact("E", (Constant("a"), Constant("b")))])
        assert list(iter_homomorphisms([], instance)) == [{}]

    def test_empty_conjunction_with_partial(self):
        partial = {Variable("x"): Constant("a")}
        matches = list(iter_homomorphisms([], Instance(), partial))
        assert matches == [partial]

    def test_very_deep_conjunction_no_recursion_error(self):
        """Thousands of atoms must not overflow the interpreter stack."""
        n = 3000
        facts = [Fact("E", (Constant(i), Constant(i + 1))) for i in range(n)]
        instance = Instance(facts)
        atoms = [Atom("E", (Constant(i), Constant(i + 1))) for i in range(n)]
        matches = list(iter_homomorphisms(atoms, instance))
        assert matches == [{}]

    def test_generator_can_be_abandoned(self):
        """Taking only the first match must leave no broken state behind."""
        instance = Instance(
            [Fact("E", (Constant("a"), Constant(i))) for i in range(10)]
        )
        atom = Atom("E", (Variable("x"), Variable("y")))
        iterator = iter_homomorphisms([atom, atom], instance)
        first = next(iterator)
        assert Variable("x") in first
        del iterator  # abandoning mid-search is fine

    def test_atom_with_all_positions_bound_uses_index(self):
        instance = Instance([Fact("E", (Constant("a"), Constant("b")))])
        atoms = [Atom("E", (Constant("a"), Constant("b")))]
        assert list(iter_homomorphisms(atoms, instance)) == [{}]
        atoms = [Atom("E", (Constant("a"), Constant("zzz")))]
        assert list(iter_homomorphisms(atoms, instance)) == []

    def test_index_stays_consistent_after_mutation(self):
        instance = Instance([Fact("E", (Constant("a"), Constant("b")))])
        # Force the index to build.
        assert instance.candidate_rows("E", 0, Constant("a"))
        instance.add(Fact("E", (Constant("a"), Constant("c"))))
        assert len(instance.candidate_rows("E", 0, Constant("a"))) == 2
        instance.discard(Fact("E", (Constant("a"), Constant("b"))))
        assert len(instance.candidate_rows("E", 0, Constant("a"))) == 1
        assert instance.candidate_rows("E", 1, Constant("b")) == set()
