"""Coverage for corners of the public API not exercised elsewhere."""

import pytest

from repro import (
    Instance,
    PDESetting,
    RelationSymbol,
    Schema,
    parse_dependency,
    parse_instance,
    parse_query,
)
from repro.core.blocks import Block
from repro.core.weak_acyclicity import build_position_graph


class TestDunderSurfaces:
    def test_setting_str(self, example1_setting):
        rendered = str(example1_setting)
        assert "example-1" in rendered
        assert "|Σ_st|=1" in rendered

    def test_instance_repr(self):
        instance = parse_instance("E(a, b)")
        assert "1 facts" in repr(instance)

    def test_atom_repr_roundtrip(self):
        from repro.core.atoms import Atom
        from repro.core.terms import Variable

        atom = Atom("R", [Variable("x")])
        assert "R" in repr(atom)

    def test_tgd_repr(self):
        tgd = parse_dependency("E(x, y) -> H(x, y)")
        assert repr(tgd).startswith("TGD(")

    def test_query_repr(self):
        query = parse_query("q(x) :- E(x, y)")
        assert "ConjunctiveQuery" in repr(query)

    def test_schema_str_and_repr(self):
        schema = Schema.from_arities({"E": 2})
        assert str(schema) == "{E/2}"
        assert "RelationSymbol" in repr(schema)


class TestBlockSurface:
    def test_block_null_count_and_ground(self):
        from repro.core.blocks import decompose_into_blocks
        from repro.core.terms import Null

        instance = Instance.from_tuples({"E": [(Null(0), "a"), ("b", "c")]})
        blocks = decompose_into_blocks(instance)
        ground = [b for b in blocks if b.is_ground()]
        nullful = [b for b in blocks if not b.is_ground()]
        assert len(ground) == 1 and ground[0].null_count == 0
        assert len(nullful) == 1 and nullful[0].null_count == 1


class TestPositionGraphSurface:
    def test_successors_merges_edge_kinds(self):
        graph = build_position_graph([parse_dependency("E(x, y) -> H(x, w)")])
        successors = graph.successors(("E", 0))
        assert ("H", 0) in successors  # regular
        assert ("H", 1) in successors  # special

    def test_no_successors(self):
        graph = build_position_graph([parse_dependency("E(x, y) -> H(x, w)")])
        assert graph.successors(("H", 1)) == set()


class TestInstanceFactsAccessor:
    def test_facts_all(self):
        instance = parse_instance("E(a, b); F(c)")
        assert len(instance.facts()) == 2

    def test_facts_single_relation(self):
        instance = parse_instance("E(a, b); F(c)")
        assert len(instance.facts("E")) == 1
        assert instance.facts("missing") == []


class TestSolveResultSurface:
    def test_bool_conversion(self, example1_setting):
        from repro import solve

        positive = solve(example1_setting, parse_instance("E(a, a)"), Instance())
        negative = solve(
            example1_setting, parse_instance("E(a, b); E(b, c)"), Instance()
        )
        assert bool(positive) and not bool(negative)


class TestChaseStepRendering:
    def test_tgd_step_str(self):
        from repro.core.chase import chase

        result = chase(
            parse_instance("E(a, b)"), [parse_dependency("E(x, y) -> H(x, y)")]
        )
        assert "tgd step" in str(result.steps[0])

    def test_egd_step_str(self):
        from repro.core.chase import chase
        from repro.core.terms import Null

        instance = Instance.from_tuples({"P": [("a", Null(0)), ("a", "b")]})
        result = chase(
            instance, [parse_dependency("P(x, y), P(x, y2) -> y = y2")]
        )
        assert any("egd step" in str(step) for step in result.steps)


class TestRelationSymbolSurface:
    def test_named_attributes(self):
        relation = RelationSymbol("protein", 3, ("acc", "name", "org"))
        assert relation.attributes == ("acc", "name", "org")

    def test_zero_arity(self):
        relation = RelationSymbol("Flag", 0)
        assert list(relation.positions()) == []


class TestSettingTextErrors:
    def test_helpful_error_for_swapped_sides(self):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError) as excinfo:
            PDESetting.from_text(
                source={"E": 2},
                target={"H": 2},
                st="H(x, y) -> E(x, y)",
            )
        assert "not over the expected schema" in str(excinfo.value)


class TestNullInternerSurface:
    def test_interner_start(self):
        from repro.core.parser import NullInterner

        interner = NullInterner(start=100)
        assert interner.get("_a").label == 100
        assert interner.get("_b").label == 101
        assert interner.get("_a").label == 100  # stable


class TestCertainAnswerResultSurface:
    def test_boolean_value_property(self, example1_setting):
        from repro.solver import certain_answers

        result = certain_answers(
            example1_setting,
            parse_query("H(x, y)"),
            parse_instance("E(a, a)"),
            Instance(),
        )
        assert result.boolean_value is (() in result.answers)


class TestRemainingPublicSurface:
    def test_apply_substitution(self):
        from repro.core.atoms import Atom, apply_substitution
        from repro.core.terms import Constant, Variable

        atoms = [Atom("E", [Variable("x"), Variable("y")])]
        out = list(apply_substitution(atoms, {Variable("x"): Constant("a")}))
        assert out[0].args[0] == Constant("a")

    def test_iter_answers_streams(self):
        query = parse_query("q(x) :- E(x, y)")
        instance = parse_instance("E(a, b); E(c, d)")
        first = next(query.iter_answers(instance))
        assert first in {(v,) for v in instance.active_domain()}

    def test_dict_serialization_functions(self):
        from repro.io import (
            instance_from_dict,
            instance_to_dict,
            setting_from_dict,
            setting_to_dict,
        )
        from repro.workloads import genomics_setting

        instance = parse_instance("E(a, b)")
        assert instance_from_dict(instance_to_dict(instance)) == instance
        setting = genomics_setting()
        restored = setting_from_dict(setting_to_dict(setting))
        assert restored.sigma_st == setting.sigma_st

    def test_supports_valuation_search(self, example1_setting):
        from repro.solver.valuation_search import supports_valuation_search

        assert supports_valuation_search(example1_setting)
        bad = PDESetting.from_text(
            source={"A": 1},
            target={"T": 1, "U": 2},
            st="A(x) -> T(x)",
            t="T(x) -> U(x, w)",
        )
        assert not supports_valuation_search(bad)

    def test_body_occurrence_count(self):
        from repro.core.terms import Variable
        from repro.tractability.marking import body_occurrence_count

        tgd = parse_dependency("H(x, y), H(y, z) -> E(x, z)")
        assert body_occurrence_count(tgd.body, Variable("y")) == 2
        assert body_occurrence_count(tgd.body, Variable("x")) == 1
        assert body_occurrence_count(tgd.body, Variable("q")) == 0

    def test_instance_family_generator(self):
        from repro.workloads import random_lav_setting
        from repro.workloads.instances import instance_family

        setting = random_lav_setting(seed=0)
        triples = list(instance_family(setting, sizes=[2, 4], seed=1))
        assert [size for size, _s, _t in triples] == [2, 4]
        for _size, source, target in triples:
            setting.validate_source_instance(source)
            setting.validate_target_instance(target)

    def test_build_parser_help(self):
        from repro.cli import build_parser

        parser = build_parser()
        help_text = parser.format_help()
        assert "solve" in help_text and "classify" in help_text
