"""Tests for the solver dispatcher."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.reductions import clique_setting, clique_source_instance
from repro.solver import find_solution, solve


class TestAutoDispatch:
    def test_ctract_routes_to_tractable(self, example1_setting):
        result = solve(example1_setting, parse_instance("E(a, a)"), Instance())
        assert result.method == "tractable"

    def test_non_ctract_routes_to_valuation(self):
        setting = clique_setting()
        source = clique_source_instance([1, 2], [(1, 2)], 2)
        result = solve(setting, source, Instance())
        assert result.method == "valuation-search"

    def test_egd_target_constraints_route_to_valuation(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
            t="T(x, y), T(x, y2) -> y = y2",
        )
        result = solve(setting, parse_instance("A(a); R(a, b)"), Instance())
        assert result.method == "valuation-search"

    def test_existential_target_tgds_route_to_branching(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 1, "U": 2},
            st="A(x) -> T(x)",
            ts="U(x, y) -> R(x, y)",
            t="T(x) -> U(x, y)",
        )
        result = solve(setting, parse_instance("A(a); R(a, b)"), Instance())
        assert result.method == "branching-chase"


class TestForcedMethods:
    def test_force_valuation_on_ctract_setting(self, example1_setting):
        result = solve(
            example1_setting, parse_instance("E(a, a)"), Instance(), method="valuation"
        )
        assert result.method == "valuation-search"
        assert result.exists

    def test_force_branching_on_ctract_setting(self, example1_setting):
        result = solve(
            example1_setting, parse_instance("E(a, a)"), Instance(), method="branching"
        )
        assert result.method == "branching-chase"
        assert result.exists

    def test_force_tractable_off_class_raises(self):
        setting = clique_setting()
        source = clique_source_instance([1, 2], [(1, 2)], 2)
        with pytest.raises(SolverError):
            solve(setting, source, Instance(), method="tractable")

    def test_unknown_method_rejected(self, example1_setting):
        with pytest.raises(ValueError):
            solve(example1_setting, parse_instance("E(a, a)"), Instance(), method="magic")

    def test_methods_agree(self, example1_setting):
        for text in ["E(a, a)", "E(a, b); E(b, c)", "E(a, b); E(b, c); E(a, c)"]:
            source = parse_instance(text)
            results = {
                method: solve(example1_setting, source, Instance(), method=method).exists
                for method in ("tractable", "valuation", "branching")
            }
            assert len(set(results.values())) == 1, (text, results)


class TestFindSolution:
    def test_returns_witness(self, example1_setting):
        source = parse_instance("E(a, a)")
        witness = find_solution(example1_setting, source, Instance())
        assert witness == parse_instance("H(a, a)")

    def test_returns_none_when_unsolvable(self, example1_setting):
        assert (
            find_solution(example1_setting, parse_instance("E(a, b); E(b, c)"), Instance())
            is None
        )
