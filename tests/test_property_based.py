"""Property-based tests (hypothesis) for the core invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import Fact
from repro.core.blocks import decompose_into_blocks
from repro.core.chase import chase, satisfies
from repro.core.homomorphism import (
    find_instance_homomorphism,
    has_instance_homomorphism,
)
from repro.core.instance import Instance
from repro.core.parser import parse_dependencies, parse_query
from repro.core.terms import Constant, Null

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

values = st.one_of(
    st.sampled_from([Constant("a"), Constant("b"), Constant("c"), Constant("d")]),
    st.builds(Null, st.integers(min_value=0, max_value=3)),
)

binary_facts = st.builds(lambda u, v: Fact("E", (u, v)), values, values)
unary_facts = st.builds(lambda u: Fact("F", (u,)), values)
facts = st.one_of(binary_facts, unary_facts)
instances = st.lists(facts, max_size=12).map(Instance)

ground_values = st.sampled_from(
    [Constant("a"), Constant("b"), Constant("c"), Constant("d")]
)
ground_binary = st.builds(lambda u, v: Fact("E", (u, v)), ground_values, ground_values)
ground_instances = st.lists(ground_binary, max_size=10).map(Instance)

COMMON_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# homomorphism properties
# ---------------------------------------------------------------------------


class TestHomomorphismProperties:
    @COMMON_SETTINGS
    @given(instances)
    def test_identity_homomorphism(self, instance):
        assert has_instance_homomorphism(instance, instance)

    @COMMON_SETTINGS
    @given(instances, instances)
    def test_subset_implies_homomorphism_into_union(self, first, second):
        union = first.union(second)
        assert has_instance_homomorphism(first, union)
        assert has_instance_homomorphism(second, union)

    @COMMON_SETTINGS
    @given(instances, instances, instances)
    def test_composition(self, a, b, c):
        ab = find_instance_homomorphism(a, b)
        bc = find_instance_homomorphism(b, c)
        if ab is not None and bc is not None:
            assert has_instance_homomorphism(a, c)

    @COMMON_SETTINGS
    @given(instances)
    def test_homomorphic_image_of_rename(self, instance):
        mapping = {null: Constant("a") for null in instance.nulls()}
        renamed = instance.rename(mapping)
        assert has_instance_homomorphism(instance, renamed)


# ---------------------------------------------------------------------------
# block properties
# ---------------------------------------------------------------------------


class TestBlockProperties:
    @COMMON_SETTINGS
    @given(instances)
    def test_blocks_partition_facts(self, instance):
        blocks = decompose_into_blocks(instance)
        merged = Instance()
        total = 0
        for block in blocks:
            total += len(block.facts)
            merged.add_all(block.facts)
        assert total == len(instance)
        assert merged == instance

    @COMMON_SETTINGS
    @given(instances)
    def test_blocks_partition_nulls(self, instance):
        blocks = decompose_into_blocks(instance)
        seen: set[Null] = set()
        for block in blocks:
            assert not (block.nulls & seen)
            seen |= block.nulls
        assert seen == instance.nulls()

    @COMMON_SETTINGS
    @given(instances)
    def test_block_facts_only_use_block_nulls(self, instance):
        for block in decompose_into_blocks(instance):
            for fact in block.facts:
                assert fact.nulls() <= block.nulls

    @COMMON_SETTINGS
    @given(instances, instances)
    def test_blockwise_homomorphism_equivalence(self, source, target):
        """Proposition 1: hom(I_can -> I) iff every block maps."""
        whole = has_instance_homomorphism(source, target)
        blockwise = all(
            has_instance_homomorphism(block.facts, target)
            for block in decompose_into_blocks(source)
        )
        assert whole == blockwise


# ---------------------------------------------------------------------------
# chase properties
# ---------------------------------------------------------------------------

TGD_SETS = [
    "E(x, y) -> E(y, x)",
    "E(x, y), E(y, z) -> E(x, z)",
    "E(x, y) -> F(x)",
    "E(x, y) -> G(x, w)\nG(x, w) -> F(w)",
]


class TestChaseProperties:
    @COMMON_SETTINGS
    @given(ground_instances, st.sampled_from(TGD_SETS))
    def test_chase_fixpoint_satisfies(self, instance, text):
        dependencies = parse_dependencies(text)
        result = chase(instance, dependencies)
        assert satisfies(result.instance, dependencies)

    @COMMON_SETTINGS
    @given(ground_instances, st.sampled_from(TGD_SETS))
    def test_chase_extends_input(self, instance, text):
        result = chase(instance, parse_dependencies(text))
        assert result.instance.contains_instance(instance)

    @COMMON_SETTINGS
    @given(ground_instances, st.sampled_from(TGD_SETS))
    def test_chase_idempotent(self, instance, text):
        dependencies = parse_dependencies(text)
        once = chase(instance, dependencies)
        twice = chase(once.instance, dependencies)
        assert twice.step_count == 0
        assert twice.instance == once.instance

    @COMMON_SETTINGS
    @given(ground_instances)
    def test_satisfied_instance_not_chased(self, instance):
        symmetric = instance.copy()
        for fact in list(symmetric):
            symmetric.add(Fact("E", (fact.args[1], fact.args[0])))
        result = chase(symmetric, parse_dependencies("E(x, y) -> E(y, x)"))
        assert result.step_count == 0


# ---------------------------------------------------------------------------
# query properties
# ---------------------------------------------------------------------------


class TestQueryProperties:
    @COMMON_SETTINGS
    @given(ground_instances, ground_instances)
    def test_cq_monotone(self, small, extra):
        query = parse_query("q(x, z) :- E(x, y), E(y, z)")
        big = small.union(extra)
        assert query.answers(small) <= query.answers(big)

    @COMMON_SETTINGS
    @given(ground_instances)
    def test_boolean_cq_reflexive_on_self_joins(self, instance):
        query = parse_query("E(x, y)")
        assert query.holds(instance) == bool(len(instance))


# ---------------------------------------------------------------------------
# core properties
# ---------------------------------------------------------------------------


class TestCoreProperties:
    @COMMON_SETTINGS
    @given(instances)
    def test_core_is_contained_and_equivalent(self, instance):
        from repro.core.cores import core

        minimized = core(instance)
        assert instance.contains_instance(minimized)
        assert has_instance_homomorphism(instance, minimized)
        assert has_instance_homomorphism(minimized, instance)

    @COMMON_SETTINGS
    @given(instances)
    def test_core_idempotent(self, instance):
        from repro.core.cores import core

        once = core(instance)
        assert core(once) == once

    @COMMON_SETTINGS
    @given(ground_instances)
    def test_ground_instances_are_cores(self, instance):
        from repro.core.cores import core

        assert core(instance) == instance


# ---------------------------------------------------------------------------
# weak acyclicity properties over generated stratified sets
# ---------------------------------------------------------------------------


class TestStratifiedTgdProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=500))
    def test_stratified_sets_are_weakly_acyclic(self, seed):
        from repro.core.weak_acyclicity import is_weakly_acyclic
        from repro.workloads.settings import random_weakly_acyclic_tgds

        tgds = random_weakly_acyclic_tgds(seed=seed)
        assert is_weakly_acyclic(tgds)

    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=200))
    def test_chase_terminates_within_certified_budget(self, seed):
        from repro.core.atoms import Fact
        from repro.core.weak_acyclicity import chase_step_bound
        from repro.workloads.settings import random_weakly_acyclic_tgds

        tgds = random_weakly_acyclic_tgds(seed=seed, tgds=3)
        # Seed a tiny instance over the layer-0 relations of the set.
        instance = Instance()
        for tgd in tgds:
            for atom in tgd.body:
                instance.add(
                    Fact(atom.relation, tuple(Constant("a") for _ in atom.args))
                )
        budget = min(chase_step_bound(tgds, len(instance)), 100_000)
        result = chase(instance, tgds, max_steps=budget)
        assert result.step_count <= budget

    @COMMON_SETTINGS
    @given(st.integers(min_value=0, max_value=200))
    def test_ranks_bounded_by_layers(self, seed):
        from repro.core.weak_acyclicity import position_ranks
        from repro.workloads.settings import random_weakly_acyclic_tgds

        layers = 3
        tgds = random_weakly_acyclic_tgds(layers=layers, seed=seed)
        ranks = position_ranks(tgds)
        # Strict upward stratification: at most layers-1 special hops.
        assert all(rank <= layers - 1 for rank in ranks.values())
