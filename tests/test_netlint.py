"""Tests for the scenario static analyzer (timeline interpreter + merge rules).

Covers every PDE3xx/PDE4xx rule firing and staying quiet, the scenario
JSON round-trip, the simulator's multi-publisher guard, the shipped-
fixture regressions (all registered scenarios and example files lint
clean), and the headline property: a random scenario the analyzer calls
clean must actually converge in the :class:`~repro.net.NetworkSimulator`.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    analyze_scenario,
    analyze_scenario_dict,
    analyze_scenario_text,
    expand_ignore,
)
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SimulationError
from repro.net import (
    BumpEpoch,
    Crash,
    Heal,
    NetworkSimulator,
    Partition,
    Restart,
    Scenario,
    dumps_scenario,
    loads_scenario,
    registry_setting,
    scenario_registry,
)
from repro.runtime.faults import FaultSchedule


def make_scenario(**overrides) -> Scenario:
    base = dict(
        name="t",
        description="",
        setting=registry_setting(),
        snapshots=[
            parse_instance(text)
            for text in ("reg(a, 1)", "reg(a, 1); reg(b, 2)", "reg(b, 2); reg(c, 3)")
        ],
        peers=["p1", "p2"],
        publisher="pub",
    )
    base.update(overrides)
    return Scenario(**base)


def codes(scenario: Scenario, deltas: bool = False) -> list[str]:
    return [d.code for d in analyze_scenario(scenario, deltas=deltas)]


class TestTimelineRules:
    def test_clean_scenario_is_clean(self):
        assert analyze_scenario(make_scenario()).clean

    def test_pde301_unhealed_partition(self):
        scenario = make_scenario(events=[Partition(0.5, {"pub", "p1"}, {"p2"})])
        report = analyze_scenario(scenario)
        assert report.codes() == ["PDE301"]
        [diagnostic] = report.diagnostics
        assert diagnostic.fixes, "PDE301 must carry the append-heal fix"

    def test_healed_partition_is_clean(self):
        scenario = make_scenario(
            events=[Partition(0.5, {"pub", "p1"}, {"p2"}), Heal(1.5)]
        )
        assert analyze_scenario(scenario).clean

    def test_pde302_crash_without_restart(self):
        scenario = make_scenario(events=[Crash(0.5, "p1")])
        report = analyze_scenario(scenario)
        assert report.codes() == ["PDE302"]
        assert report.diagnostics[0].fixes

    def test_pde303_restart_of_running_peer(self):
        scenario = make_scenario(events=[Restart(0.5, "p1")])
        assert codes(scenario) == ["PDE303"]

    def test_pde303_double_crash(self):
        scenario = make_scenario(
            events=[Crash(0.5, "p1"), Crash(0.7, "p1"), Restart(1.5, "p1")]
        )
        assert codes(scenario) == ["PDE303"]

    def test_pde304_everyone_partitioned(self):
        scenario = make_scenario(
            events=[Partition(0.5, {"pub"}, {"p1", "p2"})]
        )
        found = codes(scenario)
        assert "PDE304" in found and "PDE301" in found

    def test_pde304_everyone_crashed(self):
        scenario = make_scenario(events=[Crash(0.5, "p1"), Crash(0.6, "p2")])
        assert "PDE304" in codes(scenario)

    def test_pde305_dead_link(self):
        scenario = make_scenario(
            faults={("pub", "p1"): FaultSchedule(seed=1, drop_rate=1.0)}
        )
        assert codes(scenario) == ["PDE305"]

    def test_lossy_link_is_not_dead(self):
        scenario = make_scenario(
            faults={("pub", "p1"): FaultSchedule(seed=1, drop_rate=0.9)}
        )
        assert analyze_scenario(scenario).clean

    def test_pde306_isolated_epoch_bump(self):
        scenario = make_scenario(
            events=[
                Partition(1.2, {"pub"}, {"p1", "p2"}),
                BumpEpoch(1.5),
                Heal(2.5),
            ]
        )
        assert codes(scenario) == ["PDE306"]

    def test_reachable_epoch_bump_is_clean(self):
        scenario = make_scenario(events=[BumpEpoch(1.5)])
        assert analyze_scenario(scenario).clean

    def test_pde307_reorder_noop(self):
        # Default reorder_delay is 4 * latency = 0.2 <= interval 1.0.
        scenario = make_scenario(
            faults={("pub", "p1"): FaultSchedule(seed=1, reorder_rate=0.3)}
        )
        assert codes(scenario) == ["PDE307"]

    def test_reorder_with_long_delay_is_clean(self):
        scenario = make_scenario(
            reorder_delay=1.2,
            faults={("pub", "p1"): FaultSchedule(seed=1, reorder_rate=0.3)},
        )
        assert analyze_scenario(scenario).clean


#: A growing snapshot chain: every publish after the first ships a
#: 1-fact delta (strictly smaller than the full snapshot).
_GROWING = [
    "reg(a, 1)",
    "reg(a, 1); reg(b, 2)",
    "reg(a, 1); reg(b, 2); reg(c, 3)",
]


class TestDeltaChainRule:
    def test_pde308_partition_miss_dooms_next_delta(self):
        scenario = make_scenario(
            snapshots=[parse_instance(text) for text in _GROWING],
            events=[Partition(0.5, {"pub"}, {"p1", "p2"}), Heal(1.5)],
        )
        report = analyze_scenario(scenario, deltas=True)
        assert report.codes() == ["PDE308"]
        # Both peers certainly miss publish 1; delta 2 arrives chain-broken.
        assert len(report.diagnostics) == 2

    def test_pde308_quiet_without_deltas(self):
        scenario = make_scenario(
            snapshots=[parse_instance(text) for text in _GROWING],
            events=[Partition(0.5, {"pub"}, {"p1", "p2"}), Heal(1.5)],
        )
        assert analyze_scenario(scenario, deltas=False).clean

    def test_pde308_quiet_on_lossy_links(self):
        # On a faulty link the watermark is not statically known, so no
        # certain chain-break claim is made.
        scenario = make_scenario(
            snapshots=[parse_instance(text) for text in _GROWING],
            events=[Partition(0.5, {"pub"}, {"p1", "p2"}), Heal(1.5)],
            faults={
                ("pub", "p1"): FaultSchedule(seed=1, drop_rate=0.2),
                ("pub", "p2"): FaultSchedule(seed=2, drop_rate=0.2),
            },
        )
        assert analyze_scenario(scenario, deltas=True).clean

    def test_pde308_quiet_when_delta_never_beats_snapshot(self):
        # High-churn rounds ship full snapshots, so a missed base costs
        # nothing: default make_scenario snapshots churn 2 of 2 facts at
        # publish 2 and the publisher falls back to state transfer anyway.
        scenario = make_scenario(
            events=[Partition(0.5, {"pub"}, {"p1", "p2"}), Heal(1.5)]
        )
        assert analyze_scenario(scenario, deltas=True).clean

    def test_pde308_crash_through_delivery_window(self):
        scenario = make_scenario(
            snapshots=[parse_instance(text) for text in _GROWING],
            events=[Crash(0.5, "p1"), Restart(1.5, "p1")],
        )
        report = analyze_scenario(scenario, deltas=True)
        assert report.codes() == ["PDE308"]
        [diagnostic] = report.diagnostics
        assert "'p1'" in diagnostic.message

    def test_restart_before_delivery_makes_no_claim(self):
        # Crashed at the publish instant but back before the delivery
        # arrives: the message is delivered normally, no certain miss.
        scenario = make_scenario(
            snapshots=[parse_instance(text) for text in _GROWING],
            events=[Crash(0.99, "p1"), Restart(1.01, "p1")],
        )
        assert analyze_scenario(scenario, deltas=True).clean


class TestMergeRules:
    def test_pde401_no_trust_order(self):
        scenario = make_scenario(co_publishers=("pub2",))
        assert codes(scenario) == ["PDE401"]

    def test_pde402_incomplete_trust(self):
        scenario = make_scenario(
            co_publishers=("pub2",), trust=("pub", "stranger")
        )
        report = analyze_scenario(scenario)
        assert report.codes() == ["PDE402"]
        assert "pub2" in report.diagnostics[0].message

    def test_complete_trust_order_is_clean(self):
        scenario = make_scenario(
            co_publishers=("pub2",), trust=("pub2", "pub")
        )
        assert analyze_scenario(scenario).clean

    def test_pde403_egds_without_repair(self):
        setting = PDESetting.from_text(
            source={"reg": 2},
            target={"db": 2},
            st="reg(k, v) -> db(k, v)",
            ts="db(k, v) -> reg(k, v)",
            t="db(k, v), db(k, w) -> v = w",
            name="keyed",
        )
        scenario = make_scenario(
            setting=setting, co_publishers=("pub2",), trust=("pub", "pub2")
        )
        # include_setting=False: the target egd also trips the setting's
        # own boundary rule (PDE101), which is not under test here.
        report = analyze_scenario(scenario, include_setting=False)
        assert report.codes() == ["PDE403"]
        clean = make_scenario(
            setting=setting,
            co_publishers=("pub2",),
            trust=("pub", "pub2"),
            repair="prefer-trusted",
        )
        assert analyze_scenario(clean, include_setting=False).clean

    def test_pde404_trust_without_co_publishers(self):
        scenario = make_scenario(trust=("pub",))
        assert codes(scenario) == ["PDE404"]

    def test_pde405_unknown_repair_rule(self):
        scenario = make_scenario(repair="nuke-it")
        assert codes(scenario) == ["PDE405"]

    def test_simulator_refuses_co_publishers(self):
        scenario = make_scenario(
            co_publishers=("pub2",), trust=("pub", "pub2")
        )
        with pytest.raises(SimulationError, match="co-publishers"):
            NetworkSimulator(scenario)


class TestEntryPoints:
    def test_analyze_scenario_dict_load_failure(self):
        report = analyze_scenario_dict({"kind": "scenario", "name": "x"})
        assert report.codes() == ["PDE000"]
        assert report.diagnostics[0].rule == "load-failure"

    def test_analyze_scenario_text_invalid_json(self):
        assert analyze_scenario_text("{nope").codes() == ["PDE000"]

    def test_lint_ignore_key_suppresses(self):
        encoded = json.loads(
            dumps_scenario(
                make_scenario(events=[Partition(0.5, {"pub", "p1"}, {"p2"})])
            )
        )
        encoded["lint_ignore"] = "PDE301"
        report = analyze_scenario_dict(encoded)
        assert report.clean
        assert dict(report.ignored)["PDE301"] == 1

    def test_ignore_comma_shorthand(self):
        assert expand_ignore("PDE101, PDE203") == {"PDE101", "PDE203"}
        assert expand_ignore(["PDE101,PDE203", "PDE301"]) == {
            "PDE101",
            "PDE203",
            "PDE301",
        }
        assert expand_ignore(None) == set()

    def test_setting_findings_merge_into_scenario_report(self):
        setting = PDESetting.from_text(
            source={"reg": 2},
            target={"db": 2},
            st="reg(k, v) -> db(k, v)\nreg(k, v) -> db(k, v)",
            name="dup",
        )
        report = analyze_scenario(make_scenario(setting=setting))
        assert "PDE201" in report.codes()
        # The duplicate-dependency fix is re-rooted under "setting" so it
        # applies to scenario files.
        [diagnostic] = [d for d in report.diagnostics if d.code == "PDE201"]
        assert diagnostic.fixes[0].edits[0].path[0] == "setting"
        assert analyze_scenario(
            make_scenario(setting=setting), include_setting=False
        ).clean

    def test_scenario_json_round_trip(self):
        scenario = make_scenario(
            reorder_delay=1.2,
            faults={("pub", "p1"): FaultSchedule(seed=3, drop_rate=0.2)},
            events=[Partition(0.5, {"pub", "p1"}, {"p2"}), Heal(1.5)],
            co_publishers=("pub2",),
            trust=("pub", "pub2"),
            repair="prefer-trusted",
        )
        loaded = loads_scenario(dumps_scenario(scenario, indent=2))
        assert loaded.peers == scenario.peers
        assert loaded.publishers == scenario.publishers
        assert loaded.repair == scenario.repair
        assert loaded.faults[("pub", "p1")].drop_rate == 0.2
        assert [d.code for d in analyze_scenario(loaded)] == [
            d.code for d in analyze_scenario(scenario)
        ]


class TestShippedFixtures:
    """Regression: everything we ship lints clean, in both transfer modes."""

    @pytest.mark.parametrize("name", sorted(scenario_registry()))
    @pytest.mark.parametrize("deltas", [False, True])
    def test_registered_scenarios_lint_clean(self, name, deltas):
        scenario = scenario_registry()[name](0)
        report = analyze_scenario(scenario, deltas=deltas)
        assert report.clean, [d.render() for d in report]


# ---------------------------------------------------------------------------
# the property: netlint-clean random scenarios converge
# ---------------------------------------------------------------------------

_FACTS = ["reg(a, 1)", "reg(b, 2)", "reg(c, 3)", "reg(d, 4)", "reg(e, 5)"]


@st.composite
def random_scenarios(draw) -> Scenario:
    """Random timelines; mostly well-formed, occasionally broken.

    The generator leans toward paired partition/heal and crash/restart
    episodes so most draws survive the ``assume(report.clean)`` filter,
    but omits the closing event now and then — those draws exercise the
    filter itself.
    """
    n_snapshots = draw(st.integers(2, 4))
    snapshots = []
    for _ in range(n_snapshots):
        chosen = draw(
            st.sets(st.integers(0, len(_FACTS) - 1), min_size=1, max_size=5)
        )
        snapshots.append(
            parse_instance("; ".join(_FACTS[i] for i in sorted(chosen)))
        )
    peers = ["p1", "p2"]
    duration = (n_snapshots - 1) * 1.0
    ticks = int(duration * 10) + 5

    events = []
    episode = draw(st.sampled_from(["none", "partition", "crash", "both", "bump"]))
    if episode in ("partition", "both"):
        start = draw(st.integers(1, ticks - 2)) / 10
        isolated = draw(st.sampled_from([["p1"], ["p2"], ["p1", "p2"]]))
        kept = {"pub", *(p for p in peers if p not in isolated)}
        events.append(Partition(start, kept, set(isolated)))
        if draw(st.integers(0, 7)) != 0:  # usually heal
            heal_at = draw(st.integers(int(start * 10) + 1, ticks + 10)) / 10
            events.append(Heal(heal_at))
    if episode in ("crash", "both"):
        peer = draw(st.sampled_from(peers))
        start = draw(st.integers(1, ticks - 2)) / 10
        events.append(Crash(start, peer))
        if draw(st.integers(0, 7)) != 0:  # usually restart
            back_at = draw(st.integers(int(start * 10) + 1, ticks + 10)) / 10
            events.append(Restart(back_at, peer))
    if episode == "bump":
        events.append(BumpEpoch(draw(st.integers(1, ticks)) / 10))

    faults = {}
    if draw(st.booleans()):
        for offset, peer in enumerate(peers):
            faults[("pub", peer)] = FaultSchedule.seeded(
                seed=draw(st.integers(0, 1000)) + offset,
                drop=draw(st.sampled_from([0.0, 0.2, 0.4])),
                duplicate=draw(st.sampled_from([0.0, 0.25])),
                reorder=draw(st.sampled_from([0.0, 0.25])),
            )

    return Scenario(
        name="prop",
        description="",
        setting=registry_setting(),
        snapshots=snapshots,
        peers=peers,
        publisher="pub",
        reorder_delay=1.2,
        faults=faults,
        events=events,
    )


class TestConvergenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(scenario=random_scenarios(), deltas=st.booleans())
    def test_netlint_clean_scenarios_converge(self, scenario, deltas):
        report = analyze_scenario(scenario, deltas=deltas)
        assume(report.clean)
        result = NetworkSimulator(scenario, deltas=deltas).run()
        assert result.convergence is not None
        # Clean means PDE304 did not fire, so the verdict covers >= 1 peer.
        assert not result.convergence.vacuous
        assert result.converged, result.log
