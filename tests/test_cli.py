"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import dumps_setting
from repro.workloads import genomics_setting


@pytest.fixture
def example1_files(tmp_path, example1_setting):
    setting_path = tmp_path / "setting.json"
    setting_path.write_text(dumps_setting(example1_setting, indent=2))
    good = tmp_path / "good.txt"
    good.write_text("E(a, b); E(b, c); E(a, c)")
    bad = tmp_path / "bad.txt"
    bad.write_text("E(a, b); E(b, c)")
    return setting_path, good, bad


class TestSolveCommand:
    def test_solvable_exit_zero(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["solve", str(setting), str(good)])
        out = capsys.readouterr().out
        assert code == 0
        assert "solution exists: True" in out
        assert "H" in out

    def test_unsolvable_exit_one(self, example1_files, capsys):
        setting, _good, bad = example1_files
        code = main(["solve", str(setting), str(bad)])
        assert code == 1
        assert "solution exists: False" in capsys.readouterr().out

    def test_forced_method(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["solve", str(setting), str(good), "--method", "valuation"])
        assert code == 0
        assert "valuation-search" in capsys.readouterr().out

    def test_json_witness(self, example1_files, capsys):
        setting, good, _bad = example1_files
        main(["solve", str(setting), str(good), "--json"])
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        decoded = json.loads(payload)
        assert "H" in decoded

    def test_target_instance_argument(self, example1_files, tmp_path, capsys):
        setting, good, _bad = example1_files
        target = tmp_path / "target.txt"
        target.write_text("H(a, c)")
        code = main(["solve", str(setting), str(good), str(target)])
        assert code == 0


class TestClassifyCommand:
    def test_ctract_setting(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        code = main(["classify", str(setting)])
        out = capsys.readouterr().out
        assert code == 0
        assert "in C_tract: True" in out

    def test_genomics(self, tmp_path, capsys):
        path = tmp_path / "genomics.json"
        path.write_text(dumps_setting(genomics_setting()))
        main(["classify", str(path)])
        assert "LAV" in capsys.readouterr().out


class TestCertainCommand:
    def test_boolean_query(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["certain", str(setting), str(good), "--query", "H(x, y), H(y, z)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certain" in out and "False" in out

    def test_open_query(self, example1_files, capsys):
        setting, good, _bad = example1_files
        main(["certain", str(setting), str(good), "--query", "q(x, y) :- H(x, y)"])
        out = capsys.readouterr().out
        assert "certain answers" in out
        assert "(a, c)" in out


class TestExplainCommand:
    def test_failing_block_explained(self, example1_files, capsys):
        setting, _good, bad = example1_files
        code = main(["explain", str(setting), str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "failing-block" in out
        assert "E(a, c)" in out


class TestChaseCommand:
    def test_canonical_instances_printed(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["chase", str(setting), str(good)])
        out = capsys.readouterr().out
        assert code == 0
        assert "J_can" in out and "I_can" in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestDescribeCommand:
    def test_markdown_report(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        code = main(["describe", str(setting)])
        out = capsys.readouterr().out
        assert code == 0
        assert "# Setting analysis" in out
        assert "Recommended solver" in out

    def test_dot_output(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        main(["describe", str(setting), "--dot", "relations"])
        out = capsys.readouterr().out
        assert out.startswith("digraph relations {")

    def test_position_dot_output(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        main(["describe", str(setting), "--dot", "positions"])
        out = capsys.readouterr().out
        assert out.startswith("digraph positions {")
