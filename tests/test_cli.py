"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import dumps_setting
from repro.workloads import genomics_setting


@pytest.fixture
def example1_files(tmp_path, example1_setting):
    setting_path = tmp_path / "setting.json"
    setting_path.write_text(dumps_setting(example1_setting, indent=2))
    good = tmp_path / "good.txt"
    good.write_text("E(a, b); E(b, c); E(a, c)")
    bad = tmp_path / "bad.txt"
    bad.write_text("E(a, b); E(b, c)")
    return setting_path, good, bad


class TestSolveCommand:
    def test_solvable_exit_zero(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["solve", str(setting), str(good)])
        out = capsys.readouterr().out
        assert code == 0
        assert "solution exists: True" in out
        assert "H" in out

    def test_unsolvable_exit_one(self, example1_files, capsys):
        setting, _good, bad = example1_files
        code = main(["solve", str(setting), str(bad)])
        assert code == 1
        assert "solution exists: False" in capsys.readouterr().out

    def test_forced_method(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["solve", str(setting), str(good), "--method", "valuation"])
        assert code == 0
        assert "valuation-search" in capsys.readouterr().out

    def test_json_witness(self, example1_files, capsys):
        setting, good, _bad = example1_files
        main(["solve", str(setting), str(good), "--json"])
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        decoded = json.loads(payload)
        assert "H" in decoded

    def test_target_instance_argument(self, example1_files, tmp_path, capsys):
        setting, good, _bad = example1_files
        target = tmp_path / "target.txt"
        target.write_text("H(a, c)")
        code = main(["solve", str(setting), str(good), str(target)])
        assert code == 0


class TestClassifyCommand:
    def test_ctract_setting(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        code = main(["classify", str(setting)])
        out = capsys.readouterr().out
        assert code == 0
        assert "in C_tract: True" in out

    def test_genomics(self, tmp_path, capsys):
        path = tmp_path / "genomics.json"
        path.write_text(dumps_setting(genomics_setting()))
        main(["classify", str(path)])
        assert "LAV" in capsys.readouterr().out


class TestCertainCommand:
    def test_boolean_query(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["certain", str(setting), str(good), "--query", "H(x, y), H(y, z)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certain" in out and "False" in out

    def test_open_query(self, example1_files, capsys):
        setting, good, _bad = example1_files
        main(["certain", str(setting), str(good), "--query", "q(x, y) :- H(x, y)"])
        out = capsys.readouterr().out
        assert "certain answers" in out
        assert "(a, c)" in out


class TestExplainCommand:
    def test_failing_block_explained(self, example1_files, capsys):
        setting, _good, bad = example1_files
        code = main(["explain", str(setting), str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "failing-block" in out
        assert "E(a, c)" in out


class TestChaseCommand:
    def test_canonical_instances_printed(self, example1_files, capsys):
        setting, good, _bad = example1_files
        code = main(["chase", str(setting), str(good)])
        out = capsys.readouterr().out
        assert code == 0
        assert "J_can" in out and "I_can" in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestDescribeCommand:
    def test_markdown_report(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        code = main(["describe", str(setting)])
        out = capsys.readouterr().out
        assert code == 0
        assert "# Setting analysis" in out
        assert "Recommended solver" in out

    def test_dot_output(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        main(["describe", str(setting), "--dot", "relations"])
        out = capsys.readouterr().out
        assert out.startswith("digraph relations {")

    def test_position_dot_output(self, example1_files, capsys):
        setting, _good, _bad = example1_files
        main(["describe", str(setting), "--dot", "positions"])
        out = capsys.readouterr().out
        assert out.startswith("digraph positions {")


@pytest.fixture
def governance_files(tmp_path):
    """A C_tract LAV setting whose solves charge one node per null block."""
    from repro.core.setting import PDESetting

    setting = PDESetting.from_text(
        source={"A": 1, "R": 2},
        target={"T": 2},
        st="A(x) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
        name="governed",
    )
    setting_path = tmp_path / "setting.json"
    setting_path.write_text(dumps_setting(setting, indent=2))
    source = tmp_path / "source.txt"
    source.write_text(
        "; ".join(f"A(a{i})" for i in range(3))
        + "; "
        + "; ".join(f"R(a{i}, b{i})" for i in range(3))
    )
    return setting_path, source


class TestBudgetOptions:
    def test_solve_budget_exhaustion_exits_degraded(
        self, governance_files, capsys
    ):
        setting, source = governance_files
        code = main(["solve", str(setting), str(source), "--budget", "1"])
        out = capsys.readouterr().out
        assert code == 4
        assert "status: budget-exhausted" in out

    def test_solve_expired_deadline_exits_degraded(self, governance_files, capsys):
        setting, source = governance_files
        code = main(["solve", str(setting), str(source), "--deadline", "0"])
        out = capsys.readouterr().out
        assert code == 4
        assert "status: deadline" in out

    def test_solve_with_generous_budget_succeeds(self, governance_files, capsys):
        setting, source = governance_files
        code = main(["solve", str(setting), str(source), "--budget", "100000"])
        assert code == 0
        assert "solution exists: True" in capsys.readouterr().out

    def test_certain_budget_exhaustion_exits_degraded(
        self, governance_files, capsys
    ):
        setting, source = governance_files
        code = main(
            ["certain", str(setting), str(source), "--query", "T(x, y)",
             "--budget", "2"]
        )
        out = capsys.readouterr().out
        assert code == 4
        assert "status: budget-exhausted" in out
        assert "confirmed certain before the budget ran out" in out


class TestSyncCommand:
    @pytest.fixture
    def registry_files(self, tmp_path):
        from repro.core.setting import PDESetting

        setting = PDESetting.from_text(
            source={"reg": 2},
            target={"db": 2},
            st="reg(k, v) -> db(k, v)",
            ts="db(k, v) -> reg(k, v)",
            name="registry",
        )
        setting_path = tmp_path / "registry.json"
        setting_path.write_text(dumps_setting(setting, indent=2))
        snap1 = tmp_path / "snap1.txt"
        snap1.write_text("reg(a, 1)")
        snap2 = tmp_path / "snap2.txt"
        snap2.write_text("reg(a, 1); reg(b, 2)")
        return setting_path, snap1, snap2

    def test_successful_rounds_exit_zero(self, registry_files, capsys):
        setting, snap1, snap2 = registry_files
        code = main(["sync", str(setting), str(snap1), str(snap2)])
        out = capsys.readouterr().out
        assert code == 0
        assert "round 1: ok" in out
        assert "round 2: ok" in out

    def test_rejected_round_exits_one(self, registry_files, tmp_path, capsys):
        setting, snap1, _snap2 = registry_files
        pinned = tmp_path / "pinned.txt"
        pinned.write_text("db(own, data)")  # snap1 does not vouch for it
        code = main(["sync", str(setting), str(snap1), "--pinned", str(pinned)])
        out = capsys.readouterr().out
        assert code == 1
        assert "rejected" in out

    def test_degraded_round_exits_four(self, governance_files, capsys):
        setting, source = governance_files
        code = main(["sync", str(setting), str(source), "--budget", "1"])
        out = capsys.readouterr().out
        assert code == 4
        assert "degraded" in out
        assert "budget-exhausted" in out

    def test_retries_escalate_the_budget(self, governance_files, capsys):
        setting, source = governance_files
        code = main(
            ["sync", str(setting), str(source), "--budget", "1", "--retries", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "attempts: 2" in out

    def test_delta_flag_ships_only_the_churn(self, registry_files, capsys):
        setting, snap1, snap2 = registry_files
        code = main(["sync", str(setting), str(snap1), str(snap2), "--delta"])
        out = capsys.readouterr().out
        assert code == 0
        assert "round 1: ok" in out
        assert "round 2: ok" in out
        # snap2 adds one fact to snap1's one: 1 + 1 on the wire vs 1 + 2.
        assert "delta transfer: 2 facts on wire vs 3 full-snapshot" in out

    def test_delta_resume_continues_the_chain(
        self, registry_files, tmp_path, capsys
    ):
        setting, snap1, snap2 = registry_files
        journal = tmp_path / "session.journal"
        assert main(
            ["sync", str(setting), str(snap1), "--delta",
             "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["sync", str(setting), str(snap2), "--delta",
             "--journal", str(journal)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed from journal at round 1" in out
        # The resumed run continues the journalled watermark (its first
        # round re-baselines with a full snapshot at the next stamp), so
        # the stamped round applies instead of breaking or going stale.
        assert "round 2: ok" in out
        assert "chain broken" not in out
        assert "(stale)" not in out
        assert "delta transfer:" in out

    def test_journal_resume_continues_the_round_counter(
        self, registry_files, tmp_path, capsys
    ):
        setting, snap1, snap2 = registry_files
        journal = tmp_path / "session.journal"
        assert main(["sync", str(setting), str(snap1), "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = main(["sync", str(setting), str(snap2), "--journal", str(journal)])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed from journal at round 1" in out
        assert "round 2: ok" in out
