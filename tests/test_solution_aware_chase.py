"""Unit tests for the solution-aware chase (Definitions 6 and 7, Lemmas 1-2)."""

import pytest

from repro.core.chase import chase, satisfies, solution_aware_chase
from repro.core.parser import parse_dependencies, parse_dependency, parse_instance
from repro.exceptions import ChaseFailure


class TestSolutionAwareChase:
    def test_witnesses_come_from_solution(self):
        tgd = parse_dependency("E(x, y) -> H(x, w)")
        start = parse_instance("E(a, b)")
        solution = parse_instance("E(a, b); H(a, c); H(a, d)")
        result = solution_aware_chase(start, [tgd], solution)
        # No fresh nulls: the witness is a value of the solution.
        assert result.instance.is_ground()
        assert solution.contains_instance(result.instance)

    def test_result_contained_in_solution(self):
        tgds = parse_dependencies(
            """
            E(x, y) -> H(x, w)
            H(x, y) -> G(y, w)
            """
        )
        start = parse_instance("E(a, b)")
        solution = parse_instance("E(a, b); H(a, h1); G(h1, g1); G(b, g2)")
        result = solution_aware_chase(start, tgds, solution)
        assert solution.contains_instance(result.instance)
        assert satisfies(result.instance, tgds)

    def test_smaller_than_solution(self):
        # Lemma 2's point: the solution-aware chase extracts a small
        # sub-solution even when the given solution is bloated.
        tgd = parse_dependency("E(x, y) -> H(x, w)")
        start = parse_instance("E(a, b)")
        bloated = parse_instance(
            "E(a, b); H(a, w1); H(q, q1); H(q, q2); H(q, q3); H(q, q4)"
        )
        result = solution_aware_chase(start, [tgd], bloated)
        assert len(result.instance) < len(bloated)

    def test_requires_containment(self):
        tgd = parse_dependency("E(x, y) -> H(x, w)")
        with pytest.raises(ChaseFailure):
            solution_aware_chase(
                parse_instance("E(a, b)"), [tgd], parse_instance("H(a, c)")
            )

    def test_rejects_non_solution(self):
        # The given "solution" violates the tgd: no witness available.
        tgd = parse_dependency("E(x, y) -> H(x, w)")
        start = parse_instance("E(a, b)")
        with pytest.raises(ChaseFailure):
            solution_aware_chase(start, [tgd], parse_instance("E(a, b); H(b, c)"))

    def test_no_steps_when_already_satisfied(self):
        tgd = parse_dependency("E(x, y) -> H(x, y)")
        start = parse_instance("E(a, b); H(a, b)")
        result = solution_aware_chase(start, [tgd], start)
        assert result.step_count == 0

    def test_with_egds(self):
        dependencies = parse_dependencies(
            """
            E(x, y) -> H(x, w)
            H(x, y), H(x, y2) -> y = y2
            """
        )
        start = parse_instance("E(a, b)")
        solution = parse_instance("E(a, b); H(a, c)")
        result = solution_aware_chase(start, dependencies, solution)
        assert result.instance.tuples("H") == solution.tuples("H")


class TestLemma1LengthBound:
    def test_chase_length_polynomial_for_weakly_acyclic(self):
        # For a weakly acyclic (here: one-pass) set, the number of steps is
        # bounded by a polynomial in |K|; empirically it is linear here.
        tgd = parse_dependency("E(x, y) -> H(x, w)")
        for n in (2, 4, 8, 16):
            facts = "; ".join(f"E(a{i}, b{i})" for i in range(n))
            start = parse_instance(facts)
            solution = start.copy()
            solution.add_all(parse_instance("; ".join(f"H(a{i}, c)" for i in range(n))))
            result = solution_aware_chase(start, [tgd], solution)
            assert result.step_count == n

    def test_standard_chase_matches_length_shape(self):
        tgd = parse_dependency("E(x, y) -> H(x, w)")
        for n in (2, 4, 8):
            facts = "; ".join(f"E(a{i}, b{i})" for i in range(n))
            result = chase(parse_instance(facts), [tgd])
            assert result.step_count == n
