"""Shared fixtures: the paper's worked examples as reusable objects."""

from __future__ import annotations

import pytest

from repro import Instance, PDESetting, parse_instance


@pytest.fixture
def example1_setting() -> PDESetting:
    """The PDE setting of Example 1: E-paths of length 2 to H-edges."""
    return PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
        name="example-1",
    )


@pytest.fixture
def marked_example_setting() -> PDESetting:
    """The marking illustration below Definition 8:
    S(x1, x2) → ∃y T(x1, y) and T(x1, x2) → ∃w S(w, x2)."""
    return PDESetting.from_text(
        source={"S": 2},
        target={"T": 2},
        st="S(x1, x2) -> T(x1, y)",
        ts="T(x1, x2) -> S(w, x2)",
        name="definition-8-illustration",
    )


@pytest.fixture
def empty_target() -> Instance:
    return Instance()


@pytest.fixture
def triangle_ish_source() -> Instance:
    """The third input of Example 1: E(a,b), E(b,c), E(a,c)."""
    return parse_instance("E(a, b); E(b, c); E(a, c)")
