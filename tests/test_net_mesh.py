"""Relay topologies in the simulator: forwarding, scoring, reachability.

The star simulator suite lives in ``test_net_sim.py``; this file covers
what a declared ``topology`` adds — multi-hop forwarding, idempotence
under relay cycles, per-link peer scores and score-routed anti-entropy,
path-wise reachability, topology validation and serialization, and the
``PDE31x`` scenario-lint rules.
"""

import json

import pytest

from repro.analysis import analyze_scenario
from repro.core.parser import parse_instance
from repro.exceptions import SimulationError
from repro.net import (
    Crash,
    Heal,
    NetworkSimulator,
    Partition,
    PeerScorer,
    RelayLink,
    Restart,
    SCORE_WEIGHTS,
    Scenario,
    dumps_scenario,
    loads_scenario,
    registry_setting,
    relay_chain_scenario,
    relay_mesh_scenario,
)
from repro.runtime.faults import FaultSchedule

SNAPSHOTS = [
    parse_instance("reg(a, 1)"),
    parse_instance("reg(a, 1); reg(b, 2)"),
    parse_instance("reg(b, 2); reg(c, 3)"),
    parse_instance("reg(b, 2); reg(c, 3); reg(d, 4)"),
]


def mesh(name, peers, topology, **kwargs):
    kwargs.setdefault("snapshots", SNAPSHOTS)
    return Scenario(
        name=name,
        description="test mesh",
        setting=registry_setting(),
        publisher="origin",
        peers=peers,
        topology=topology,
        **kwargs,
    )


# ----------------------------------------------------------------------
# convergence through relays
# ----------------------------------------------------------------------


class TestRelayConvergence:
    @pytest.mark.parametrize("deltas", [False, True], ids=["snap", "delta"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_relay_chain_converges(self, seed, deltas, tmp_path):
        simulator = NetworkSimulator(
            relay_chain_scenario(seed=seed),
            journal_dir=tmp_path,
            deltas=deltas,
        )
        report = simulator.run()
        assert report.converged
        assert not report.convergence.unreachable
        assert report.stats["forwarded"] > 0

    @pytest.mark.parametrize("deltas", [False, True], ids=["snap", "delta"])
    def test_relay_mesh_converges(self, deltas):
        report = NetworkSimulator(relay_mesh_scenario(seed=0), deltas=deltas).run()
        assert report.converged

    def test_chain_leaf_state_matches_oracle(self):
        chain = mesh(
            "chain",
            ["mid", "leaf"],
            (RelayLink("origin", "mid"), RelayLink("mid", "leaf")),
        )
        simulator = NetworkSimulator(chain)
        report = simulator.run()
        assert report.converged
        # The leaf is two hops from the publisher: everything it holds
        # arrived by relay forwarding, not a direct link.
        assert report.stats["forwarded"] >= len(SNAPSHOTS)

    def test_forwarding_is_deterministic(self):
        logs = [
            NetworkSimulator(relay_chain_scenario(seed=3)).run().log
            for _ in range(2)
        ]
        assert logs[0] == logs[1]

    def test_relay_cycle_is_idempotent_and_terminates(self):
        # mid <-> back form a 2-cycle below the publisher.  Forwarding
        # happens only on a *fresh* apply, so each node forwards each
        # stamp at most once: the loop terminates, the extra lap arrives
        # stale, and both peers converge.
        cyclic = mesh(
            "cycle",
            ["mid", "back"],
            (
                RelayLink("origin", "mid"),
                RelayLink("mid", "back"),
                RelayLink("back", "mid"),
            ),
        )
        report = NetworkSimulator(cyclic).run()
        assert report.converged
        # Each stamp is applied exactly once per peer; the cycle's echo
        # deliveries are all rejected as stale.
        assert report.stats["applied"] == len(SNAPSHOTS) * 2
        assert report.stats["stale"] >= len(SNAPSHOTS)

    def test_duplicate_paths_apply_once(self):
        # A diamond delivers every stamp over two routes; the watermark
        # accepts the first copy and rejects the second.
        diamond = mesh(
            "diamond",
            ["hub-a", "hub-b", "leaf"],
            (
                RelayLink("origin", "hub-a"),
                RelayLink("origin", "hub-b"),
                RelayLink("hub-a", "leaf"),
                RelayLink("hub-b", "leaf"),
            ),
        )
        report = NetworkSimulator(diamond).run()
        assert report.converged
        assert report.stats["applied"] == len(SNAPSHOTS) * 3
        assert report.stats["stale"] >= len(SNAPSHOTS)


# ----------------------------------------------------------------------
# scoring and score-routed anti-entropy
# ----------------------------------------------------------------------


class TestScoring:
    def test_lossy_link_scores_below_healthy_twin(self):
        simulator = NetworkSimulator(relay_mesh_scenario(seed=0))
        assert simulator.run().converged
        scores = simulator.scorer.snapshot()
        # hub-a -> leaf drops 60% of deliveries; hub-b -> leaf is clean.
        assert scores["hub-a->leaf"] < scores["hub-b->leaf"]

    def test_catchup_reroutes_through_healthier_upstream(self):
        # leaf is partitioned away while publishes continue, then healed:
        # anti-entropy must repair it through an upstream hub, and the
        # scorer ranks the clean hub above the lossy one.
        lossy = mesh(
            "reroute",
            ["hub-a", "hub-b", "leaf"],
            (
                RelayLink("origin", "hub-a"),
                RelayLink("origin", "hub-b"),
                RelayLink("hub-a", "leaf"),
                RelayLink("hub-b", "leaf"),
            ),
            faults={
                ("hub-a", "leaf"): FaultSchedule.seeded(seed=5, drop=0.9),
            },
            events=[
                Partition(0.5, {"origin", "hub-a", "hub-b"}, {"leaf"}),
                Heal(2.5),
            ],
        )
        simulator = NetworkSimulator(lossy)
        report = simulator.run()
        assert report.converged
        scores = simulator.scorer.snapshot()
        assert scores["hub-a->leaf"] < scores["hub-b->leaf"]
        best = simulator.scorer.best_upstream("leaf", ["hub-a", "hub-b"])
        assert best == "hub-b"

    def test_scorer_unit_behavior(self):
        scorer = PeerScorer()
        link = ("a", "b")
        assert scorer.score(link) == 1.0
        scorer.record(link, "applied")
        assert scorer.score(link) == pytest.approx(1.0 + SCORE_WEIGHTS["applied"])
        # Unknown outcomes are worth nothing but do not raise.
        before = scorer.score(link)
        scorer.record(link, "never-heard-of-it")
        assert scorer.score(link) == before
        # Clamped to [0, 2] in both directions.
        for _ in range(100):
            scorer.record(link, "unreachable")
        assert scorer.score(link) == 0.0
        for _ in range(100):
            scorer.record(link, "applied")
        assert scorer.score(link) == 2.0

    def test_best_upstream_ranks_by_score_then_name(self):
        scorer = PeerScorer()
        scorer.record(("x", "peer"), "dropped")
        assert scorer.best_upstream("peer", ["x", "y"]) == "y"
        # Equal scores tie-break on name for determinism.
        assert scorer.best_upstream("peer", ["b", "a"]) in ("a", "b")
        assert scorer.best_upstream("peer", []) is None

    def test_snapshot_is_sorted_and_serializable(self):
        scorer = PeerScorer()
        scorer.record(("b", "c"), "applied")
        scorer.record(("a", "b"), "dropped")
        snapshot = scorer.snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)


# ----------------------------------------------------------------------
# path-wise reachability
# ----------------------------------------------------------------------


class TestReachability:
    def test_dead_relay_severs_downstream(self):
        chain = mesh(
            "severed",
            ["mid", "leaf"],
            (RelayLink("origin", "mid"), RelayLink("mid", "leaf")),
            events=[Crash(0.5, "mid")],
        )
        report = NetworkSimulator(chain).run()
        # mid is crashed; leaf is alive but has no live path.
        assert sorted(report.convergence.unreachable) == ["leaf", "mid"]

    def test_restarted_relay_restores_the_path(self, tmp_path):
        chain = mesh(
            "healed",
            ["mid", "leaf"],
            (RelayLink("origin", "mid"), RelayLink("mid", "leaf")),
            events=[Crash(0.5, "mid"), Restart(1.5, "mid")],
        )
        report = NetworkSimulator(chain, journal_dir=tmp_path).run()
        assert report.converged
        assert not report.convergence.unreachable


# ----------------------------------------------------------------------
# topology validation and serialization
# ----------------------------------------------------------------------


class TestTopologyValue:
    def test_custody_filtering(self):
        link = RelayLink("a", "b", custody=("origin",))
        assert link.carries("origin")
        assert not link.carries("other")
        assert RelayLink("a", "b").carries("anything")

    def test_validation_rejects_bad_edges(self):
        base = dict(peers=["mid"], topology=(RelayLink("ghost", "mid"),))
        with pytest.raises(SimulationError):
            mesh("bad-sender", **base)
        with pytest.raises(SimulationError):
            mesh("bad-recipient", ["mid"], (RelayLink("origin", "ghost"),))
        with pytest.raises(SimulationError):
            mesh("self-loop", ["mid"], (RelayLink("mid", "mid"),))
        with pytest.raises(SimulationError):
            mesh(
                "duplicate",
                ["mid"],
                (RelayLink("origin", "mid"), RelayLink("origin", "mid")),
            )
        with pytest.raises(SimulationError):
            mesh(
                "bad-custody",
                ["mid"],
                (RelayLink("origin", "mid", custody=("nobody",)),),
            )

    def test_star_derivation_when_no_topology(self):
        star = Scenario(
            name="star",
            description="no topology",
            setting=registry_setting(),
            publisher="origin",
            peers=["a", "b"],
            snapshots=SNAPSHOTS,
        )
        assert star.topology == ()
        assert {link.recipient for link in star.relay_links} == {"a", "b"}
        assert all(link.sender == "origin" for link in star.relay_links)

    def test_downstream_upstreams_walk_the_graph(self):
        scenario = relay_mesh_scenario(seed=0)
        hubs = {link.recipient for link in scenario.downstream("origin")}
        assert hubs == {"hub-a", "hub-b"}
        feeders = {link.sender for link in scenario.upstreams("leaf")}
        assert feeders == {"hub-a", "hub-b"}

    def test_topology_round_trips_through_json(self):
        for builder in (relay_chain_scenario, relay_mesh_scenario):
            scenario = builder(seed=4)
            restored = loads_scenario(dumps_scenario(scenario))
            assert restored.topology == scenario.topology
            assert restored.relay_links == scenario.relay_links

    def test_custody_round_trips(self):
        scenario = relay_mesh_scenario(seed=0)
        encoded = json.loads(dumps_scenario(scenario))
        assert all(entry["custody"] == ["origin"] for entry in encoded["topology"])
        restored = loads_scenario(json.dumps(encoded))
        assert all(
            link.custody == frozenset({"origin"}) for link in restored.topology
        )


# ----------------------------------------------------------------------
# the PDE31x lint rules
# ----------------------------------------------------------------------


def lint_codes(scenario, deltas=False):
    return sorted(
        diagnostic.code
        for diagnostic in analyze_scenario(scenario, deltas=deltas).diagnostics
    )


class TestMeshLint:
    def test_shipped_relay_scenarios_lint_clean(self):
        for builder in (relay_chain_scenario, relay_mesh_scenario):
            for deltas in (False, True):
                report = analyze_scenario(builder(seed=0), deltas=deltas)
                assert report.clean, [d.code for d in report.diagnostics]

    def test_custody_gap_is_an_error(self):
        # leaf has no in-link at all: statically starved of the feed.
        gapped = mesh(
            "gap", ["mid", "leaf"], (RelayLink("origin", "mid"),)
        )
        assert lint_codes(gapped) == ["PDE312"]

    def test_relay_cycle_warns(self):
        cyclic = mesh(
            "cycle",
            ["mid", "back"],
            (
                RelayLink("origin", "mid"),
                RelayLink("mid", "back"),
                RelayLink("back", "mid"),
            ),
        )
        assert lint_codes(cyclic) == ["PDE311"]

    def test_unrestored_relay_path_warns_per_severed_peer(self):
        severed = mesh(
            "sever",
            ["mid", "leaf"],
            (RelayLink("origin", "mid"), RelayLink("mid", "leaf")),
            events=[Crash(0.5, "mid")],
        )
        codes = lint_codes(severed)
        # mid: crash-without-restart; leaf: relay-unreachable; and with
        # nobody reachable the convergence check is vacuous.
        assert codes == ["PDE302", "PDE304", "PDE310"]

    def test_partition_severing_one_edge_is_not_vacuous(self):
        edge = mesh(
            "edge",
            ["mid", "leaf"],
            (RelayLink("origin", "mid"), RelayLink("mid", "leaf")),
            events=[
                Partition(0.5, {"origin", "mid"}, {"leaf"}),
            ],
        )
        codes = lint_codes(edge)
        assert "PDE310" in codes  # leaf severed through the relay graph
        assert "PDE304" not in codes  # mid is still reachable

    def test_star_rules_stay_quiet_on_topologies(self):
        # A reorder schedule whose delay cannot overtake would be PDE307
        # on a star; the overtake argument assumes adjacency, so a
        # topology scenario must not emit it.
        noisy = mesh(
            "quiet",
            ["mid", "leaf"],
            (RelayLink("origin", "mid"), RelayLink("mid", "leaf")),
            faults={
                ("origin", "mid"): FaultSchedule.seeded(seed=1, reorder=0.5),
            },
        )
        codes = lint_codes(noisy, deltas=True)
        assert "PDE307" not in codes
        assert "PDE308" not in codes
