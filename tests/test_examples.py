"""Smoke tests: every shipped example script runs cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "genomics_sync.py", "clique_reduction.py"} <= names
    assert len(EXAMPLES) >= 3
