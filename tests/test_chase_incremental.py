"""Tests for the incremental (semi-naive) chase and the stateful solver.

The central contract: chaining :func:`chase_incremental` over any delta
schedule produces an instance homomorphically equivalent to from-scratch
:func:`chase` of the patched base — the same "agree up to null renaming"
oracle (`has_instance_homomorphism` both ways) the network convergence
check uses.  The suite covers directed unit cases (retraction cascades,
alternative justifications, vanished head witnesses, input promotion,
egd fallbacks, consume semantics), seeded random delta schedules over the
shipped workloads, a hypothesis sweep over random bases/deltas, and the
solver/session integration (equivalence to the Figure 3 solver, fallback
and reset paths, the ``chase.*`` counters).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import Fact
from repro.core.chase import chase, chase_incremental
from repro.core.homomorphism import has_instance_homomorphism
from repro.core.instance import Instance
from repro.core.parser import parse_dependencies, parse_dependency, parse_instance
from repro.core.terms import Constant, NullFactory
from repro.exceptions import DependencyError, IncrementalChaseUnsupported
from repro.obs.metrics import MetricsRegistry
from repro.solver.incremental import IncrementalTractableSolver
from repro.solver.tractable import exists_solution_tractable
from repro.sync.session import Stamp, SyncSession
from repro.workloads.scenarios import (
    generate_genomics_feed,
    genomics_setting,
)


def equivalent(left: Instance, right: Instance) -> bool:
    """Hom-equivalence: equal up to null renaming (the convergence oracle)."""
    return has_instance_homomorphism(
        left, right
    ) and has_instance_homomorphism(right, left)


def facts_of(instance: Instance) -> set[Fact]:
    return set(instance)


class TestIncrementalChaseUnits:
    TGDS = parse_dependencies("E(x, y) -> H(x, y); H(x, y), H(y, z) -> H(x, z)")

    def test_add_only_delta_matches_scratch(self):
        base = parse_instance("E(a, b)")
        prior = chase(base, self.TGDS)
        delta = [Fact("E", (Constant("b"), Constant("c")))]
        result = chase_incremental(prior, delta, [], self.TGDS)
        patched = base.copy()
        for fact in delta:
            patched.add(fact)
        assert equivalent(result.instance, chase(patched, self.TGDS).instance)
        assert result.incremental
        assert result.refired > 0

    def test_withdrawal_retracts_derivation_cone(self):
        base = parse_instance("E(a, b); E(b, c)")
        prior = chase(base, self.TGDS)
        gone = Fact("E", (Constant("a"), Constant("b")))
        result = chase_incremental(prior, [], [gone], self.TGDS)
        expected = chase(parse_instance("E(b, c)"), self.TGDS)
        assert equivalent(result.instance, expected.instance)
        # E(a,b), H(a,b), and H(a,c) all vanish with the justification.
        assert len(result.retracted) == 3

    def test_alternative_justification_survives(self):
        # H(a,b) is derivable from E(a,b) and independently from F(a,b);
        # withdrawing E(a,b) must re-derive it, not lose it.
        tgds = parse_dependencies("E(x, y) -> H(x, y); F(x, y) -> H(x, y)")
        base = parse_instance("E(a, b); F(a, b)")
        prior = chase(base, tgds)
        result = chase_incremental(
            prior, [], [Fact("E", (Constant("a"), Constant("b")))], tgds
        )
        assert Fact("H", (Constant("a"), Constant("b"))) in result.instance
        assert equivalent(
            result.instance, chase(parse_instance("F(a, b)"), tgds).instance
        )

    def test_vanished_head_witness_refires(self):
        # The restricted chase never fired the tgd (H(a,b) already held);
        # withdrawing the witness must fire it now.
        tgds = [parse_dependency("E(x, y) -> H(x, y)")]
        base = parse_instance("E(a, b); H(a, b)")
        prior = chase(base, tgds)
        assert prior.step_count == 0
        result = chase_incremental(
            prior, [], [Fact("H", (Constant("a"), Constant("b")))], tgds
        )
        assert Fact("H", (Constant("a"), Constant("b"))) in result.instance
        assert result.refired == 1

    def test_existential_witness_refires_fresh_null(self):
        tgds = [parse_dependency("E(x, y) -> H(x, w)")]
        base = parse_instance("E(a, b); H(a, c)")
        prior = chase(base, tgds)
        assert prior.step_count == 0  # H(a,c) witnesses the head
        result = chase_incremental(
            prior, [], [Fact("H", (Constant("a"), Constant("c")))], tgds
        )
        expected = chase(parse_instance("E(a, b)"), tgds)
        assert equivalent(result.instance, expected.instance)
        assert result.instance.count("H") == 1

    def test_promoted_input_survives_withdrawal_of_derivation(self):
        tgds = [parse_dependency("E(x, y) -> H(x, y)")]
        base = parse_instance("E(a, b)")
        prior = chase(base, tgds)  # derives H(a, b)
        h = Fact("H", (Constant("a"), Constant("b")))
        e = Fact("E", (Constant("a"), Constant("b")))
        # Round 1: H(a,b) arrives as *input*.
        step1 = chase_incremental(prior, [h], [], tgds)
        # Round 2: the derivation's premise is withdrawn; H must survive.
        step2 = chase_incremental(step1, [], [e], tgds)
        assert h in step2.instance
        assert e not in step2.instance

    def test_withdrawing_derived_fact_is_vacuous(self):
        tgds = [parse_dependency("E(x, y) -> H(x, y)")]
        prior = chase(parse_instance("E(a, b)"), tgds)
        h = Fact("H", (Constant("a"), Constant("b")))
        result = chase_incremental(prior, [], [h], tgds)
        # The new base never contained H(a,b); the chase re-derives it, so
        # withdrawing it incrementally is a no-op.
        assert h in result.instance
        assert result.retracted == ()

    def test_egd_merge_history_unsupported(self):
        deps = parse_dependencies(
            "E(x) -> H(x, w);"
            "G(x, y) -> H(x, y);"
            "H(x, y), H(x, z) -> y = z"
        )
        # The first tgd invents H(a, n); G then forces H(a, b), and the
        # egd merges n into b.
        prior = chase(parse_instance("E(a); G(a, b)"), deps)
        assert any(step.merged for step in prior.steps)
        with pytest.raises(IncrementalChaseUnsupported):
            chase_incremental(prior, [], [], deps)

    def test_egd_newly_applicable_unsupported(self):
        deps = parse_dependencies(
            "E(x, y) -> H(x, w); H(x, y), H(x, z) -> y = z"
        )
        prior = chase(parse_instance("E(a, b)"), deps)
        with pytest.raises(IncrementalChaseUnsupported):
            chase_incremental(
                prior, [Fact("H", (Constant("a"), Constant("q")))], [], deps
            )

    def test_disjunctive_dependency_rejected(self):
        from repro.core.atoms import Atom
        from repro.core.dependencies import DisjunctiveTGD
        from repro.core.terms import Variable

        x, y = Variable("x"), Variable("y")
        deps = [
            DisjunctiveTGD(
                body=[Atom("E", (x, y))],
                disjuncts=[[Atom("H", (x, y))], [Atom("G", (x, y))]],
            )
        ]
        prior = chase(parse_instance("E(a, b)"), [])
        with pytest.raises(DependencyError):
            chase_incremental(prior, [], [], deps)

    def test_prior_not_mutated_by_default(self):
        prior = chase(parse_instance("E(a, b)"), self.TGDS)
        before = facts_of(prior.instance)
        chase_incremental(
            prior,
            [Fact("E", (Constant("b"), Constant("c")))],
            [Fact("E", (Constant("a"), Constant("b")))],
            self.TGDS,
        )
        assert facts_of(prior.instance) == before

    def test_consume_takes_over_instance(self):
        prior = chase(parse_instance("E(a, b)"), self.TGDS)
        result = chase_incremental(
            prior,
            [Fact("E", (Constant("b"), Constant("c")))],
            [],
            self.TGDS,
            consume=True,
        )
        assert result.instance is prior.instance  # ownership transferred

    def test_delta_fields_report_net_effect(self):
        tgds = [parse_dependency("E(x, y) -> H(x, y)")]
        prior = chase(parse_instance("E(a, b)"), tgds)
        e_new = Fact("E", (Constant("c"), Constant("d")))
        e_old = Fact("E", (Constant("a"), Constant("b")))
        result = chase_incremental(prior, [e_new], [e_old], tgds)
        added = set(result.delta_added)
        assert e_new in added
        assert Fact("H", (Constant("c"), Constant("d"))) in added
        retracted = set(result.retracted)
        assert e_old in retracted
        assert Fact("H", (Constant("a"), Constant("b"))) in retracted

    def test_support_index_transfers_and_rebuilds(self):
        prior = chase(parse_instance("E(a, b)"), self.TGDS)
        assert prior.support is None
        step1 = chase_incremental(
            prior, [Fact("E", (Constant("b"), Constant("c")))], [], self.TGDS
        )
        assert step1.support is not None
        assert prior.support is None
        # Chaining from the successor reuses the transferred index.
        step2 = chase_incremental(
            step1, [Fact("E", (Constant("c"), Constant("d")))], [], self.TGDS
        )
        assert step1.support is None
        assert step2.support is not None


class TestRandomDeltaSchedules:
    """Seeded random churn: the incremental chain tracks the scratch chase."""

    DEPS = parse_dependencies(
        "E(x, y) -> H(x, y);"
        "H(x, y), H(y, z) -> H(x, z);"
        "E(x, y) -> R(x, w);"
        "F(x) -> H(x, x)"
    )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_random_schedule_equivalence(self, seed):
        rng = random.Random(seed)
        names = [Constant(c) for c in "abcdef"]
        pool = [Fact("E", (u, v)) for u in names for v in names] + [
            Fact("F", (u,)) for u in names
        ]
        base = Instance(rng.sample(pool, k=8))
        factory = NullFactory()
        prior = chase(base, self.DEPS, null_factory=factory)
        live = facts_of(base)
        for _ in range(6):
            added = rng.sample([f for f in pool if f not in live], k=rng.randint(0, 4))
            withdrawn = rng.sample(sorted(live, key=str), k=rng.randint(0, 3))
            live = (live - set(withdrawn)) | set(added)
            prior = chase_incremental(
                prior, added, withdrawn, self.DEPS, null_factory=factory
            )
            scratch = chase(Instance(live), self.DEPS)
            assert equivalent(prior.instance, scratch.instance)

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_genomics_feed_equivalence(self, seed):
        setting = genomics_setting()
        deps = list(setting.sigma_st)
        feed = generate_genomics_feed(
            rounds=5, proteins=25, churn=0.3, seed=seed
        )
        factory = NullFactory()
        prior = chase(feed[0], deps, null_factory=factory)
        prev = feed[0]
        for snap in feed[1:]:
            added, withdrawn = snap.diff(prev)
            prior = chase_incremental(
                prior, added, withdrawn, deps, null_factory=factory
            )
            assert equivalent(prior.instance, chase(snap, deps).instance)
            prev = snap


# Hypothesis sweep: arbitrary small bases and deltas over a fixed mixed
# dependency set (full + transitive + existential tgds).
_SWEEP_DEPS = parse_dependencies(
    "E(x, y) -> H(y, x); H(x, y), E(y, z) -> H(x, z); E(x, x) -> R(x, w)"
)
_vals = st.sampled_from([Constant(c) for c in "abcd"])
_e_facts = st.builds(lambda u, v: Fact("E", (u, v)), _vals, _vals)


class TestHypothesisEquivalence:
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(_e_facts, max_size=8),
        st.lists(_e_facts, max_size=4),
        st.lists(_e_facts, max_size=4),
    )
    def test_single_delta_equivalence(self, base_facts, added, withdrawn):
        base = Instance(base_facts)
        prior = chase(base, _SWEEP_DEPS)
        result = chase_incremental(prior, added, withdrawn, _SWEEP_DEPS)
        patched = base.copy()
        for fact in withdrawn:
            patched.discard(fact)
        for fact in added:
            patched.add(fact)
        scratch = chase(patched, _SWEEP_DEPS)
        assert equivalent(result.instance, scratch.instance)


class TestIncrementalSolver:
    def test_matches_tractable_solver_on_churn(self):
        setting = genomics_setting()
        feed = generate_genomics_feed(rounds=6, proteins=30, churn=0.25, seed=9)
        solver = IncrementalTractableSolver(setting)
        target = Instance(schema=setting.target_schema)
        for i, snap in enumerate(feed):
            got = solver.solve(snap, target)
            want = exists_solution_tractable(setting, snap, target)
            assert got.exists == want.exists
            if got.exists:
                assert equivalent(got.solution, want.solution)
            assert got.method == ("tractable" if i == 0 else "tractable-incremental")

    def test_reset_forces_cold_round(self):
        setting = genomics_setting()
        feed = generate_genomics_feed(rounds=3, proteins=10, churn=0.2, seed=1)
        solver = IncrementalTractableSolver(setting)
        target = Instance(schema=setting.target_schema)
        solver.solve(feed[0], target)
        solver.reset()
        assert not solver.warm
        result = solver.solve(feed[1], target)
        assert result.method == "tractable"
        assert solver.warm

    def test_non_ctract_setting_rejected(self):
        from repro.core.setting import PDESetting
        from repro.exceptions import SolverError

        setting = PDESetting.from_text(
            source={"s": 1},
            target={"t": 1},
            st="s(x) -> t(x)",
            ts="t(x) -> s(x)",
            t="t(x), t(y) -> x = y",
            name="constrained",
        )
        with pytest.raises(SolverError):
            IncrementalTractableSolver(setting)

    def test_counters_emitted(self):
        setting = genomics_setting()
        feed = generate_genomics_feed(rounds=3, proteins=10, churn=0.2, seed=2)
        solver = IncrementalTractableSolver(setting)
        target = Instance(schema=setting.target_schema)
        registry = MetricsRegistry()
        for snap in feed:
            solver.solve(snap, target, metrics=registry)
        counters = registry.snapshot()["counters"]
        assert counters["chase.incremental"] == 2  # rounds after the cold one
        assert counters["chase.refired"] > 0


class TestSessionIntegration:
    def _feed_deltas(self, feed, schema):
        prev = feed[0]
        for snap in feed[1:]:
            added, withdrawn = snap.diff(prev)
            ai = Instance(schema=schema)
            for fact in added:
                ai.add(fact)
            wi = Instance(schema=schema)
            for fact in withdrawn:
                wi.add(fact)
            yield ai, wi
            prev = snap

    def test_incremental_session_matches_scratch_session(self):
        setting = genomics_setting()
        feed = generate_genomics_feed(rounds=6, proteins=25, churn=0.25, seed=4)

        def drive(incremental):
            session = SyncSession(setting, incremental=incremental)
            session.sync(feed[0], stamp=Stamp(0, 0))
            for i, (ai, wi) in enumerate(
                self._feed_deltas(feed, setting.source_schema), 1
            ):
                outcome = session.sync_delta(
                    ai, wi, base=Stamp(0, i - 1), stamp=Stamp(0, i)
                )
                assert outcome.ok
            return session

        fast, slow = drive(True), drive(False)
        assert equivalent(fast.state(), slow.state())

    def test_smoke_incremental_counter_exercised(self):
        # Tier-1 smoke (ISSUE 10): a small churn scenario must actually
        # take the incremental path, observable via chase.incremental.
        setting = genomics_setting()
        feed = generate_genomics_feed(rounds=4, proteins=12, churn=0.2, seed=6)
        session = SyncSession(setting)
        registry = MetricsRegistry()
        session.sync(feed[0], stamp=Stamp(0, 0), metrics=registry)
        for i, (ai, wi) in enumerate(
            self._feed_deltas(feed, setting.source_schema), 1
        ):
            outcome = session.sync_delta(
                ai, wi, base=Stamp(0, i - 1), stamp=Stamp(0, i),
                metrics=registry,
            )
            assert outcome.ok
        counters = registry.snapshot()["counters"]
        assert counters.get("chase.incremental", 0) > 0

    def test_epoch_bump_resets_pipeline(self):
        setting = genomics_setting()
        feed = generate_genomics_feed(rounds=3, proteins=12, churn=0.2, seed=7)
        session = SyncSession(setting)
        session.sync(feed[0], stamp=Stamp(0, 0))
        session.sync(feed[1], stamp=Stamp(0, 1))
        assert session._solver is not None and session._solver.warm
        outcome = session.sync(feed[2], stamp=Stamp(1, 0))  # epoch bump
        assert outcome.ok
        # The bump reset the cache before the round, which then re-warmed it.
        assert session._solver.warm

    def test_incremental_off_uses_legacy_dispatch(self):
        setting = genomics_setting()
        feed = generate_genomics_feed(rounds=2, proteins=10, churn=0.2, seed=8)
        session = SyncSession(setting, incremental=False)
        outcome = session.sync(feed[0], stamp=Stamp(0, 0))
        assert outcome.ok
        assert session._solver is None
