"""Tests for certain answers (Definition 4, Theorems 2-3)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.query import UnionOfConjunctiveQueries
from repro.core.setting import PDESetting
from repro.core.terms import Constant
from repro.solver import certain_answers, is_certain


class TestExample1Queries:
    """The worked certain-answer computations below Definition 4."""

    def test_self_loop_makes_query_certain(self, example1_setting):
        query = parse_query("H(x, y), H(y, z)")
        result = certain_answers(
            example1_setting, query, parse_instance("E(a, a)"), Instance()
        )
        assert result.solutions_exist
        assert result.boolean_value is True

    def test_triangle_ish_makes_query_uncertain(self, example1_setting):
        query = parse_query("H(x, y), H(y, z)")
        result = certain_answers(
            example1_setting,
            query,
            parse_instance("E(a, b); E(b, c); E(a, c)"),
            Instance(),
        )
        # {H(a, c)} is a solution falsifying the query.
        assert result.solutions_exist
        assert result.boolean_value is False

    def test_vacuous_certainty_without_solutions(self, example1_setting):
        query = parse_query("H(x, y), H(y, z)")
        result = certain_answers(
            example1_setting, query, parse_instance("E(a, b); E(b, c)"), Instance()
        )
        assert not result.solutions_exist
        assert result.boolean_value is True  # vacuously certain


class TestNonBooleanQueries:
    @pytest.fixture
    def setting(self) -> PDESetting:
        return PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
        )

    def test_forced_answer_is_certain(self, setting):
        # Only one R-edge from a: every solution contains T(a, b).
        source = parse_instance("A(a); R(a, b)")
        query = parse_query("q(x, y) :- T(x, y)")
        result = certain_answers(setting, query, source, Instance())
        assert result.answers == {(Constant("a"), Constant("b"))}

    def test_choice_destroys_certainty(self, setting):
        # Two R-edges from a: neither T(a, b) nor T(a, c) is certain,
        # but the projection to the first column is.
        source = parse_instance("A(a); R(a, b); R(a, c)")
        full = parse_query("q(x, y) :- T(x, y)")
        proj = parse_query("q(x) :- T(x, y)")
        assert certain_answers(setting, full, source, Instance()).answers == set()
        assert certain_answers(setting, proj, source, Instance()).answers == {
            (Constant("a"),)
        }

    def test_is_certain_individual_tuples(self, setting):
        source = parse_instance("A(a); R(a, b); R(a, c)")
        query = parse_query("q(x, y) :- T(x, y)")
        assert not is_certain(
            setting, query, source, Instance(), (Constant("a"), Constant("b"))
        )
        proj = parse_query("q(x) :- T(x, y)")
        assert is_certain(setting, proj, source, Instance(), (Constant("a"),))

    def test_target_facts_are_certain(self, setting):
        # J itself appears in every solution.
        source = parse_instance("A(a); R(a, b); R(q, r)")
        target = parse_instance("T(q, r)")
        query = parse_query("q(x, y) :- T(x, y)")
        result = certain_answers(setting, query, source, target)
        assert (Constant("q"), Constant("r")) in result.answers


class TestUCQCertainAnswers:
    def test_union_certainty(self, example1_setting):
        # H(a,c) or H(c,a): the only solution family always has H(a, c).
        ucq = UnionOfConjunctiveQueries(
            [parse_query("H('a', 'c')"), parse_query("H('c', 'a')")]
        )
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        result = certain_answers(example1_setting, ucq, source, Instance())
        assert result.boolean_value is True

    def test_ucq_not_certain_when_both_disjuncts_avoidable(self, example1_setting):
        ucq = UnionOfConjunctiveQueries(
            [parse_query("H('a', 'b')"), parse_query("H('b', 'c')")]
        )
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        # The minimal solution {H(a, c)} falsifies both disjuncts.
        result = certain_answers(example1_setting, ucq, source, Instance())
        assert result.boolean_value is False


class TestWithTargetConstraints:
    def test_certainty_under_key(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
            t="T(x, y), T(x, y2) -> y = y2",
        )
        source = parse_instance("A(a); R(a, b); R(a, c)")
        target = parse_instance("T(a, b)")
        # With T(a, b) pinned and the key, T(a, c) can never appear.
        query = parse_query("q(x, y) :- T(x, y)")
        result = certain_answers(setting, query, source, target)
        assert result.answers == {(Constant("a"), Constant("b"))}
