"""Tests for the explanation layer."""

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.solver.explain import explain
from repro.reductions import clique_setting, clique_source_instance
from repro.workloads import generate_genomics_data, genomics_setting


class TestSolutionFound:
    def test_reports_method_and_witness(self, example1_setting):
        explanation = explain(example1_setting, parse_instance("E(a, a)"), Instance())
        assert explanation.exists
        assert explanation.reason == "solution-found"
        assert explanation.details["solution"] == parse_instance("H(a, a)")
        assert "tractable" in explanation.narrative


class TestFailingBlock:
    def test_ctract_failure_names_the_block(self, example1_setting):
        explanation = explain(
            example1_setting, parse_instance("E(a, b); E(b, c)"), Instance()
        )
        assert not explanation.exists
        assert explanation.reason == "failing-block"
        # The failing block is the required-but-missing E(a, c).
        assert explanation.details["block"] == parse_instance("E(a, c)")
        assert "E(a, c)" in explanation.narrative

    def test_genomics_stale_facts_explained(self):
        setting = genomics_setting()
        source, target = generate_genomics_data(
            proteins=5, stale_local_facts=1, seed=3
        )
        explanation = explain(setting, source, target)
        assert not explanation.exists
        assert explanation.reason == "failing-block"
        assert "STALE" in explanation.narrative


class TestGroundPremiseViolation:
    def test_pinned_target_fact_without_backing(self):
        setting = clique_setting()
        source = clique_source_instance([1, 2], [(1, 2)], 2)
        # Pin a P-fact whose (z, w) pair is not an edge.
        target = parse_instance("P(a1, 1, a2, 1)")
        explanation = explain(setting, source, target)
        assert not explanation.exists
        assert explanation.reason == "ground-premise-violation"
        assert "P(a1, 1, a2, 1)" in explanation.narrative


class TestExhaustedSearch:
    def test_no_clique_reported_as_exhausted(self):
        setting = clique_setting()
        source = clique_source_instance([1, 2, 3], [(1, 2)], 3)
        explanation = explain(setting, source, Instance())
        assert not explanation.exists
        assert explanation.reason == "exhausted-search"
        assert "search" in explanation.narrative

    def test_str_is_narrative(self, example1_setting):
        explanation = explain(example1_setting, parse_instance("E(a, a)"), Instance())
        assert str(explanation) == explanation.narrative
