"""Unit tests for the resilient runtime layer (`repro.runtime`)."""

import json

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import BudgetExceeded, JournalError, ReproError, SolverError
from repro.runtime import (
    Budget,
    CancellationToken,
    FaultClock,
    JournalState,
    RetryPolicy,
    SessionJournal,
    SolveStatus,
    cancel_after,
    faulty_feed,
    stall_after,
)
from repro.runtime.budget import DEFAULT_NODE_CAP


@pytest.fixture
def registry_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"reg": 2},
        target={"db": 2},
        st="reg(k, v) -> db(k, v)",
        ts="db(k, v) -> reg(k, v)",
        name="registry",
    )


class TestSolveStatus:
    def test_values_are_stable_strings(self):
        assert str(SolveStatus.DECIDED) == "decided"
        assert str(SolveStatus.BUDGET_EXHAUSTED) == "budget-exhausted"
        assert str(SolveStatus.DEADLINE) == "deadline"
        assert str(SolveStatus.CANCELLED) == "cancelled"

    def test_round_trips_through_value(self):
        for status in SolveStatus:
            assert SolveStatus(status.value) is status


class TestCancellationToken:
    def test_starts_uncancelled(self):
        token = CancellationToken()
        assert not token.cancelled

    def test_cancel_is_sticky(self):
        token = CancellationToken()
        token.cancel()
        token.cancel()
        assert token.cancelled


class TestBudgetCaps:
    def test_node_cap_enforced(self):
        budget = Budget(node_cap=3)
        for _ in range(3):
            budget.charge_node()
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_node()
        assert info.value.status is SolveStatus.BUDGET_EXHAUSTED

    def test_chase_step_cap_enforced(self):
        budget = Budget(chase_step_cap=2)
        budget.charge_chase_step()
        budget.charge_chase_step()
        with pytest.raises(BudgetExceeded):
            budget.charge_chase_step()

    def test_fact_cap_enforced_in_bulk(self):
        budget = Budget(fact_cap=10)
        budget.charge_facts(7)
        with pytest.raises(BudgetExceeded):
            budget.charge_facts(7)

    def test_uncapped_budget_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.charge_node()
        budget.charge_facts(10**6)
        assert budget.nodes == 1000

    def test_budget_exceeded_is_a_solver_error(self):
        # Legacy callers catch SolverError; strict exhaustion must land there.
        assert issubclass(BudgetExceeded, SolverError)
        assert issubclass(BudgetExceeded, ReproError)

    def test_counters_and_snapshot(self):
        budget = Budget()
        budget.charge_node()
        budget.charge_chase_step()
        budget.charge_chase_step()
        budget.charge_facts(5)
        assert budget.snapshot() == {
            "budget_nodes": 1,
            "budget_chase_steps": 2,
            "budget_facts": 5,
        }


class TestBudgetDeadlineAndCancellation:
    def test_deadline_fires_at_checkpoint(self):
        clock = FaultClock()
        budget = Budget(wall_time_s=10.0, clock=clock, check_interval=1)
        budget.charge_node()
        clock.advance(11.0)
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_node()
        assert info.value.status is SolveStatus.DEADLINE

    def test_deadline_checked_only_every_interval(self):
        clock = FaultClock()
        budget = Budget(wall_time_s=1.0, clock=clock, check_interval=4)
        clock.advance(2.0)  # already past the deadline
        budget.charge_node()  # ticks 1..3 skip the clock entirely
        budget.charge_node()
        budget.charge_node()
        with pytest.raises(BudgetExceeded):
            budget.charge_node()  # tick 4 checks and fires

    def test_explicit_checkpoint_bypasses_interval(self):
        clock = FaultClock()
        budget = Budget(wall_time_s=1.0, clock=clock, check_interval=1000)
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded):
            budget.checkpoint()

    def test_cancellation_observed_at_checkpoint(self):
        token = CancellationToken()
        budget = Budget(token=token, check_interval=1)
        budget.charge_node()
        token.cancel()
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_node()
        assert info.value.status is SolveStatus.CANCELLED

    def test_cancellation_wins_over_deadline(self):
        # A cancelled computation that also blew its deadline reports
        # CANCELLED: the directive explains the stop better than the clock.
        clock = FaultClock()
        token = CancellationToken()
        budget = Budget(wall_time_s=1.0, clock=clock, token=token)
        clock.advance(5.0)
        token.cancel()
        with pytest.raises(BudgetExceeded) as info:
            budget.checkpoint()
        assert info.value.status is SolveStatus.CANCELLED

    def test_unwatched_budget_skips_clock(self):
        calls = []

        def clock():
            calls.append(True)
            return 0.0

        budget = Budget(node_cap=100, clock=clock, check_interval=1)
        for _ in range(50):
            budget.charge_node()
        # No deadline and no token: charging must never consult the clock.
        assert calls == []


class TestBudgetConstructors:
    def test_from_legacy_none_is_uncapped(self):
        assert Budget.from_legacy(None) is None

    def test_from_legacy_default_applies(self):
        budget = Budget.from_legacy(None, default=DEFAULT_NODE_CAP)
        assert budget.node_cap == DEFAULT_NODE_CAP
        assert budget.strict

    def test_from_legacy_is_strict(self):
        budget = Budget.from_legacy(7)
        assert budget.node_cap == 7
        assert budget.strict

    def test_from_node_budget_is_the_canonical_name(self):
        # from_legacy is the historical alias of from_node_budget.
        assert Budget.from_legacy.__func__ is Budget.from_node_budget.__func__
        budget = Budget.from_node_budget(7)
        assert budget.node_cap == 7
        assert budget.strict
        assert Budget.from_node_budget(None) is None

    def test_scaled_resets_counters_and_scales_caps(self):
        token = CancellationToken()
        budget = Budget(node_cap=10, fact_cap=3, token=token, wall_time_s=100.0)
        budget.charge_node()
        escalated = budget.scaled(4.0)
        assert escalated.node_cap == 40
        assert escalated.fact_cap == 12
        assert escalated.nodes == 0
        # Deadline and token are shared facts, not caps to escalate.
        assert escalated.deadline == budget.deadline
        assert escalated.token is token

    def test_scaled_keeps_uncapped_dimensions_uncapped(self):
        assert Budget(node_cap=10).scaled(2.0).chase_step_cap is None

    def test_repr_mentions_configuration(self):
        text = repr(Budget(node_cap=5, token=CancellationToken(), strict=True))
        assert "nodes=5" in text and "token" in text and "strict" in text
        assert "uncapped" in repr(Budget())


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=42)
        assert policy.delay(1) == policy.delay(1)

    def test_delay_backs_off_geometrically(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, jitter=0.0, max_delay=10.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.4)

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(base_delay=1.0, backoff=10.0, jitter=0.0, max_delay=2.0)
        assert policy.delay(5) == 2.0

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.5, max_delay=1.0)
        for attempt in range(10):
            delay = policy.delay(attempt)
            assert 1.0 <= delay < 1.5

    def test_escalate_none_budget(self):
        assert RetryPolicy().escalate(None, 1) is None

    def test_escalate_compounds_per_attempt(self):
        policy = RetryPolicy(escalation=4.0)
        budget = Budget(node_cap=10)
        assert policy.escalate(budget, 0).node_cap == 10
        assert policy.escalate(budget, 1).node_cap == 40
        assert policy.escalate(budget, 2).node_cap == 160

    def test_pause_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(jitter=0.0, sleep=slept.append)
        policy.pause(0)
        assert slept == [policy.delay(0)]


class TestSessionJournal:
    def _journal(self, tmp_path, name="session.journal"):
        return SessionJournal(tmp_path / name)

    def test_exists_only_when_nonempty(self, tmp_path):
        journal = self._journal(tmp_path)
        assert not journal.exists()
        journal.path.write_text("")
        assert not journal.exists()

    def test_round_trip(self, tmp_path, registry_setting):
        journal = self._journal(tmp_path)
        pinned = parse_instance("db(own, data)")
        imported = parse_instance("db(a, 1); db(b, 2)")
        journal.ensure_header(registry_setting, pinned)
        journal.record_round(1, imported, imported.copy(), Instance())
        state = journal.load()
        assert isinstance(state, JournalState)
        assert state.rounds == 1
        assert state.imported == imported
        assert state.pinned == pinned
        assert state.setting.name == registry_setting.name

    def test_last_commit_wins(self, tmp_path, registry_setting):
        journal = self._journal(tmp_path)
        journal.ensure_header(registry_setting, Instance())
        journal.record_round(1, parse_instance("db(a, 1)"), Instance(), Instance())
        journal.record_round(2, parse_instance("db(b, 2)"), Instance(), Instance())
        state = journal.load()
        assert state.rounds == 2
        assert state.imported == parse_instance("db(b, 2)")

    def test_ensure_header_is_idempotent(self, tmp_path, registry_setting):
        journal = self._journal(tmp_path)
        journal.ensure_header(registry_setting, Instance())
        journal.ensure_header(registry_setting, Instance())
        assert len(journal.path.read_text().splitlines()) == 1

    def test_torn_final_line_dropped(self, tmp_path, registry_setting):
        journal = self._journal(tmp_path)
        journal.ensure_header(registry_setting, Instance())
        journal.record_round(1, parse_instance("db(a, 1)"), Instance(), Instance())
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "commit", "round": 2, "impo')  # crash mid-append
        state = journal.load()
        assert state.rounds == 1
        assert state.imported == parse_instance("db(a, 1)")

    def test_interior_corruption_raises(self, tmp_path, registry_setting):
        journal = self._journal(tmp_path)
        journal.ensure_header(registry_setting, Instance())
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("garbage, not json\n")  # committed (newline-terminated)
        journal.record_round(1, parse_instance("db(a, 1)"), Instance(), Instance())
        with pytest.raises(JournalError):
            journal.load()

    def test_missing_header_raises(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.path.write_text('{"type": "commit", "round": 1}\n')
        with pytest.raises(JournalError):
            journal.load()

    def test_unsupported_version_raises(self, tmp_path, registry_setting):
        journal = self._journal(tmp_path)
        journal.ensure_header(registry_setting, Instance())
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 999
        journal.path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError):
            journal.load()


class TestFaultHarness:
    def test_fault_clock_is_monotone(self):
        clock = FaultClock(start=5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock() == 7.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_stall_after_trips_deadline(self):
        clock = FaultClock()
        budget = Budget(
            wall_time_s=60.0,
            clock=clock,
            check_interval=1,
            probe=stall_after(clock, kind="chase-step", after=2),
        )
        budget.charge_chase_step()
        budget.charge_chase_step()
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_chase_step()  # third step wedges; deadline fires
        assert info.value.status is SolveStatus.DEADLINE

    def test_cancel_after_trips_token(self):
        token = CancellationToken()
        budget = Budget(
            token=token,
            check_interval=1,
            probe=cancel_after(token, kind="node", after=1),
        )
        budget.charge_node()
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_node()
        assert info.value.status is SolveStatus.CANCELLED

    def test_unknown_charge_kind_rejected(self):
        with pytest.raises(ValueError):
            stall_after(FaultClock(), kind="bogus")

    def test_faulty_feed_drop_and_duplicate(self):
        delivered = list(faulty_feed(["s0", "s1", "s2"], drop=[1], duplicate=[2]))
        assert delivered == ["s0", "s2", "s2"]

    def test_faulty_feed_default_is_faithful(self):
        assert list(faulty_feed(["a", "b"])) == ["a", "b"]
