"""Unit tests for relation symbols and schemas."""

import pytest

from repro.core.atoms import Atom, Fact
from repro.core.schema import RelationSymbol, Schema
from repro.core.terms import Constant, Variable
from repro.exceptions import SchemaError


class TestRelationSymbol:
    def test_default_attribute_names(self):
        relation = RelationSymbol("R", 3)
        assert relation.attributes == ("#0", "#1", "#2")

    def test_explicit_attribute_names(self):
        relation = RelationSymbol("P", 2, ("acc", "name"))
        assert relation.attributes == ("acc", "name")

    def test_attribute_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("P", 2, ("only_one",))

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", -1)

    def test_positions(self):
        assert list(RelationSymbol("R", 2).positions()) == [("R", 0), ("R", 1)]

    def test_str(self):
        assert str(RelationSymbol("R", 2)) == "R/2"


class TestSchema:
    def test_from_arities(self):
        schema = Schema.from_arities({"E": 2, "H": 3})
        assert schema.arity_of("E") == 2
        assert schema.arity_of("H") == 3

    def test_contains(self):
        schema = Schema.from_arities({"E": 2})
        assert "E" in schema
        assert "H" not in schema

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema()["E"]

    def test_conflicting_redeclaration_rejected(self):
        schema = Schema.from_arities({"E": 2})
        with pytest.raises(SchemaError):
            schema.add(RelationSymbol("E", 3))

    def test_idempotent_redeclaration_allowed(self):
        schema = Schema.from_arities({"E": 2})
        schema.add(RelationSymbol("E", 2))
        assert len(schema) == 1

    def test_positions(self):
        schema = Schema.from_arities({"E": 2, "U": 1})
        assert set(schema.positions()) == {("E", 0), ("E", 1), ("U", 0)}

    def test_disjoint_from(self):
        source = Schema.from_arities({"E": 2})
        target = Schema.from_arities({"H": 2})
        assert source.disjoint_from(target)
        assert not source.disjoint_from(Schema.from_arities({"E": 2}))

    def test_union(self):
        union = Schema.from_arities({"E": 2}).union(Schema.from_arities({"H": 2}))
        assert set(union.names()) == {"E", "H"}

    def test_union_conflict_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_arities({"E": 2}).union(Schema.from_arities({"E": 3}))

    def test_validate_atom_arity(self):
        schema = Schema.from_arities({"E": 2})
        schema.validate_atom(Atom("E", [Variable("x"), Variable("y")]))
        with pytest.raises(SchemaError):
            schema.validate_atom(Atom("E", [Variable("x")]))

    def test_validate_fact(self):
        schema = Schema.from_arities({"E": 2})
        schema.validate_fact(Fact("E", [Constant("a"), Constant("b")]))
        with pytest.raises(SchemaError):
            schema.validate_fact(Fact("F", [Constant("a")]))

    def test_equality(self):
        assert Schema.from_arities({"E": 2}) == Schema.from_arities({"E": 2})
        assert Schema.from_arities({"E": 2}) != Schema.from_arities({"E": 3})
