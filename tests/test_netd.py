"""The netd daemon and publisher client: loopback, crash, drain, bounds.

Socket tests here run on the loopback in well under a second each; the
heavy seeded chaos suites live in ``test_netd_chaos.py`` behind the
``slow``/``chaos`` markers.
"""

import asyncio

import pytest

from repro.core.parser import parse_instance
from repro.exceptions import SimulationError
from repro.net import registry_setting
from repro.netd import (
    DaemonState,
    FrameDecoder,
    FrameKind,
    PROTOCOL_VERSION,
    PublisherClient,
    SendQueue,
    SyncDaemon,
    encode_frame,
    open_stream,
)
from repro.net.transport import Message
from repro.runtime import RetryPolicy
from repro.sync import Stamp


SNAPSHOTS = [
    parse_instance("reg(a, 1)"),
    parse_instance("reg(a, 1); reg(b, 2)"),
    parse_instance("reg(b, 2); reg(c, 3)"),
]


def run(coroutine):
    return asyncio.run(coroutine)


async def _daemon(tmp_path, peers=("peer-a",), **kwargs):
    daemon = SyncDaemon(
        registry_setting(),
        list(peers),
        journal_dir=tmp_path / "journals",
        **kwargs,
    )
    await daemon.start()
    return daemon


async def _client(daemon, peer="peer-a", **kwargs):
    kwargs.setdefault("ack_timeout", 2.0)
    client = PublisherClient(daemon.address, peer, **kwargs)
    await client.start()
    return client


# ----------------------------------------------------------------------
# loopback basics
# ----------------------------------------------------------------------


def test_loopback_publish_and_stale_replay(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        client = await _client(daemon)
        for index, snapshot in enumerate(SNAPSHOTS):
            assert await client.publish(Stamp(1, index + 1), snapshot) == "applied"
        # Redelivery of an old stamp is the protocol working, not an error.
        assert await client.publish(Stamp(1, 2), SNAPSHOTS[1]) == "stale"
        state = daemon.peer_state("peer-a")
        assert state == parse_instance("db(b, 2); db(c, 3)")
        await client.close()
        assert await daemon.stop() is True
        assert daemon.state is DaemonState.STOPPED

    run(scenario())


def test_delta_publish_with_chain_fallback(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        client = await _client(daemon, deltas=True)
        assert await client.publish(Stamp(1, 1), SNAPSHOTS[0]) == "applied"
        assert await client.publish(Stamp(1, 2), SNAPSHOTS[1]) == "applied"
        assert client.stats["sent_deltas"] == 1
        # Forget the base: the next publish must fall back to a snapshot.
        client.rebase()
        assert await client.publish(Stamp(1, 3), SNAPSHOTS[2]) == "applied"
        assert client.stats["sent_snapshots"] == 2
        assert daemon.peer_state("peer-a") == parse_instance("db(b, 2); db(c, 3)")
        await client.close()
        await daemon.stop()

    run(scenario())


def test_unix_socket_transport(tmp_path):
    async def scenario():
        daemon = SyncDaemon(
            registry_setting(),
            ["peer-a"],
            listen=str(tmp_path / "netd.sock"),
            journal_dir=tmp_path / "journals",
        )
        await daemon.start()
        client = await _client(daemon)
        assert await client.publish(Stamp(1, 1), SNAPSHOTS[0]) == "applied"
        await client.close()
        await daemon.stop()

    run(scenario())


def test_welcome_reports_watermark_and_peers(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path, peers=("peer-a", "peer-b"))
        client = await _client(daemon)
        await client.publish(Stamp(1, 1), SNAPSHOTS[0])
        await client.close()
        reader, writer = await open_stream(daemon.address)
        writer.write(
            encode_frame(
                FrameKind.HELLO, {"peer": "peer-a", "protocol": PROTOCOL_VERSION}
            )
        )
        await writer.drain()
        decoder = FrameDecoder()
        frames = []
        while not frames:
            frames = decoder.feed(await reader.read(4096))
        welcome = frames[0]
        assert welcome.kind is FrameKind.WELCOME
        assert welcome.payload["watermark"] == [1, 1]
        assert welcome.payload["peers"] == ["peer-a", "peer-b"]
        writer.close()
        await daemon.stop()

    run(scenario())


def test_protocol_error_answers_error_frame_and_closes(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        reader, writer = await open_stream(daemon.address)
        writer.write(b"\x00\x00\x00\x04\x63\x01\x00\x00GARB")  # bad version 0x63
        await writer.drain()
        data = await reader.read(4096)
        frames = FrameDecoder().feed(data)
        assert frames and frames[0].kind is FrameKind.ERROR
        assert (await reader.read(4096)) == b""  # closed, not resynchronized
        assert daemon.stats["protocol_errors"] == 1
        await daemon.stop()

    run(scenario())


def test_hello_protocol_version_mismatch_refused(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        reader, writer = await open_stream(daemon.address)
        writer.write(
            encode_frame(FrameKind.HELLO, {"peer": "peer-a", "protocol": 99})
        )
        await writer.drain()
        frames = FrameDecoder().feed(await reader.read(4096))
        assert frames[0].kind is FrameKind.ERROR
        await daemon.stop()

    run(scenario())


# ----------------------------------------------------------------------
# crash / restart / kill-9
# ----------------------------------------------------------------------


def test_crashed_peer_acks_unavailable_until_restart(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        client = await _client(daemon)
        assert await client.publish(Stamp(1, 1), SNAPSHOTS[0]) == "applied"
        daemon.crash_peer("peer-a")
        assert await client.publish(Stamp(1, 2), SNAPSHOTS[1]) == "unavailable"
        with pytest.raises(SimulationError, match="crashed"):
            daemon.peer_state("peer-a")
        daemon.restart_peer("peer-a")
        assert daemon.watermark("peer-a") == Stamp(1, 1)  # journal resume
        assert await client.publish(Stamp(1, 2), SNAPSHOTS[1]) == "applied"
        await client.close()
        await daemon.stop()

    run(scenario())


def test_abort_then_restart_resumes_with_zero_duplicate_application(tmp_path):
    """kill -9 mid-run: the journal watermark proves redelivery is stale."""

    async def scenario():
        daemon = await _daemon(tmp_path)
        client = await _client(daemon)
        for index, snapshot in enumerate(SNAPSHOTS):
            await client.publish(Stamp(1, index + 1), snapshot)
        state_before = daemon.peer_state("peer-a")
        daemon.abort()  # no drain, no BYE, no commits — memory is gone
        await client.close(bye=False)

        resumed = await _daemon(tmp_path)
        assert resumed.watermark("peer-a") == Stamp(1, 3)
        assert resumed.peer_state("peer-a") == state_before
        replay = await _client(resumed)
        # Redeliver every already-applied round: all stale, none applied.
        for index, snapshot in enumerate(SNAPSHOTS):
            assert await replay.publish(Stamp(1, index + 1), snapshot) == "stale"
        assert resumed.peer_stats("peer-a")["applied"] == 0
        assert resumed.peer_stats("peer-a")["stale"] == 3
        assert await replay.publish(Stamp(1, 4), SNAPSHOTS[0]) == "applied"
        await replay.close()
        await resumed.stop()

    run(scenario())


def test_torn_journal_tail_resumes_at_last_committed_round(tmp_path):
    """A crash mid-append leaves a torn final record: the daemon resumes
    at the last *committed* round and the lost round simply re-applies."""

    async def scenario():
        daemon = await _daemon(tmp_path)
        client = await _client(daemon)
        for index, snapshot in enumerate(SNAPSHOTS):
            assert await client.publish(Stamp(1, index + 1), snapshot) == "applied"
        daemon.abort()
        await client.close(bye=False)

        # Tear the tail: the crash hit mid-way through fsyncing round 3.
        journal_path = tmp_path / "journals" / "peer-a.journal"
        text = journal_path.read_text(encoding="utf-8").rstrip("\n")
        journal_path.write_text(text[:-20], encoding="utf-8")

        resumed = await _daemon(tmp_path)
        assert resumed.watermark("peer-a") == Stamp(1, 2)  # round 3 never durable
        client = await _client(resumed)
        # Redelivering the torn round applies (once); earlier rounds stay stale.
        assert await client.publish(Stamp(1, 1), SNAPSHOTS[0]) == "stale"
        assert await client.publish(Stamp(1, 3), SNAPSHOTS[2]) == "applied"
        assert resumed.peer_stats("peer-a") == {
            "applied": 1, "stale": 1, "rejected": 0, "degraded": 0,
            "chain_broken": 0, "unavailable": 0,
        }
        assert resumed.peer_state("peer-a") == parse_instance("db(b, 2); db(c, 3)")
        await client.close()
        await resumed.stop()

    run(scenario())


# ----------------------------------------------------------------------
# drain-on-shutdown
# ----------------------------------------------------------------------


def test_graceful_drain_finishes_queued_rounds(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        host = daemon.hosts["peer-a"]
        for index, snapshot in enumerate(SNAPSHOTS):
            message = Message("origin", "peer-a", Stamp(1, index + 1), snapshot)
            host.queue.put_nowait((message, None))
        assert await daemon.stop(drain=True) is True
        # Every queued round committed before exit; the journal holds them.
        assert daemon.stats["drained_rounds"] == 3
        resumed = await _daemon(tmp_path)
        assert resumed.watermark("peer-a") == Stamp(1, 3)
        await resumed.stop()

    run(scenario())


def test_drain_deadline_expiry_reports_dropped_rounds(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path, drain_deadline=0.0)
        host = daemon.hosts["peer-a"]
        for index, snapshot in enumerate(SNAPSHOTS):
            message = Message("origin", "peer-a", Stamp(1, index + 1), snapshot)
            host.queue.put_nowait((message, None))
        assert await daemon.stop(drain=True) is False
        assert daemon.stats["drain_dropped"] > 0

    run(scenario())


# ----------------------------------------------------------------------
# heartbeats and idle timeouts
# ----------------------------------------------------------------------


def test_idle_connection_is_closed_and_heartbeats_prevent_it(tmp_path):
    async def scenario():
        daemon = await _daemon(
            tmp_path, heartbeat_interval=0.05, idle_timeout=0.2
        )
        # A silent connection is torn down after the idle window...
        reader, writer = await open_stream(daemon.address)
        writer.write(
            encode_frame(
                FrameKind.HELLO, {"peer": "peer-a", "protocol": PROTOCOL_VERSION}
            )
        )
        await writer.drain()
        deadline = asyncio.get_running_loop().time() + 2.0
        while not daemon.stats["idle_closed"]:
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.02)
        # ...while a heartbeating client outlives many idle windows.
        client = await _client(daemon, heartbeat_interval=0.05)
        await asyncio.sleep(0.5)
        assert await client.publish(Stamp(1, 1), SNAPSHOTS[0]) == "applied"
        assert daemon.stats["idle_closed"] == 1
        await client.close()
        await daemon.stop()

    run(scenario())


# ----------------------------------------------------------------------
# bounded queues: backpressure, then degrade — never unbounded memory
# ----------------------------------------------------------------------


def test_send_queue_depth_never_exceeds_bound():
    async def scenario():
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        queue = SendQueue(depth=4, wait=0.0, metrics=metrics)
        for index in range(20):
            await queue.put(bytes([index]))
        assert len(queue) == 4
        assert queue.peak <= 4
        assert queue.evicted == 16
        assert metrics.gauge("netd.queue_peak").value <= 4
        assert metrics.counter("netd.queue_evicted").value == 16
        # Oldest evictable frames went first: the newest four remain.
        remaining = [await queue.get() for _ in range(4)]
        assert remaining == [bytes([i]) for i in range(16, 20)]

    run(scenario())


def test_send_queue_never_evicts_protected_frames():
    async def scenario():
        queue = SendQueue(depth=2, wait=0.0)
        await queue.put(b"bye-1", evictable=False)
        await queue.put(b"bye-2", evictable=False)
        await queue.put(b"heartbeat")  # nothing sheddable: newcomer dropped
        assert len(queue) == 2
        assert [await queue.get(), await queue.get()] == [b"bye-1", b"bye-2"]

    run(scenario())


def test_client_pending_queue_degrades_to_newest_snapshots(tmp_path):
    """Overflowing offers supersede the oldest pending pair, bounded depth."""

    async def scenario():
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        # No start(): the sender never drains, the queue must still bound.
        client = PublisherClient(
            ("127.0.0.1", 1), "peer-a", max_queue=8,
            backpressure_wait=0.001, metrics=metrics,
        )
        for index in range(40):
            await client.offer(Stamp(1, index + 1), SNAPSHOTS[0])
        assert len(client._pending) == 8
        assert client.queue_peak <= 8
        assert client.stats["queue_evicted"] == 32
        assert metrics.gauge("netd.queue_peak").value <= 8
        assert metrics.counter("netd.queue_evicted").value == 32
        # The evicted stamps resolved as superseded; the newest survive.
        assert client.outcomes[Stamp(1, 1)] == "superseded"
        assert client._pending[0][0] == Stamp(1, 33)

    run(scenario())


# ----------------------------------------------------------------------
# satellite: sync and async backoff share one deterministic schedule
# ----------------------------------------------------------------------


def test_async_backoff_schedule_identical_to_sync():
    policy = RetryPolicy(max_attempts=6, seed=7)
    expected = [policy.delay(attempt) for attempt in range(6)]

    paused_sync: list[float] = []
    recorder = RetryPolicy(max_attempts=6, seed=7, sleep=paused_sync.append)
    for attempt in range(6):
        recorder.pause(attempt)

    paused_async: list[float] = []

    async def fake_sleep(seconds: float) -> None:
        paused_async.append(seconds)

    async def pauses() -> None:
        for attempt in range(6):
            await policy.pause_async(attempt, sleep=fake_sleep)

    run(pauses())
    assert paused_sync == expected
    assert paused_async == expected  # identical schedule, attempt by attempt

    # And a different seed produces a different (still deterministic) one.
    other = RetryPolicy(max_attempts=6, seed=8)
    assert [other.delay(a) for a in range(6)] != expected


def test_pause_async_defaults_to_asyncio_sleep():
    policy = RetryPolicy(base_delay=0.001, jitter=0.0)

    async def one_pause() -> None:
        await policy.pause_async(0)

    run(one_pause())  # must not raise (and must not block the loop)
