"""Tests for the static-analysis engine (``repro.analysis``).

Covers the diagnostic data model, the rule families (well-formedness,
boundary, hygiene), suppression, and the solver's dispatch explanation —
in particular that the three Section-4 relaxations and non-weak-acyclicity
each carry a distinct stable code.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    CODES,
    AnalysisReport,
    Diagnostic,
    analyze,
    analyze_dict,
    analyze_text,
    dispatch_explanation,
)
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.io.serialization import setting_to_dict
from repro.reductions import (
    clique_setting,
    coloring_setting,
    egd_boundary_setting,
    full_tgd_boundary_setting,
)
from repro.solver import solve


def codes_of(report: AnalysisReport) -> set[str]:
    return {diagnostic.code for diagnostic in report}


class TestDiagnosticModel:
    def test_rule_defaults_from_code_table(self):
        diagnostic = Diagnostic("PDE101", "warning", "msg")
        assert diagnostic.rule == CODES["PDE101"].rule == "target-egd"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("PDE999", "error", "msg")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("PDE001", "fatal", "msg")

    def test_render_mentions_code_rule_and_location(self):
        diagnostic = Diagnostic("PDE002", "error", "bad arity", hint="fix it")
        rendered = diagnostic.render()
        assert "PDE002" in rendered
        assert "[arity-mismatch]" in rendered
        assert rendered.startswith("-: ")  # no span
        assert "hint: fix it" in rendered

    def test_report_sorted_most_severe_first(self):
        report = AnalysisReport.build(
            "s",
            [
                Diagnostic("PDE203", "info", "unused"),
                Diagnostic("PDE101", "warning", "egd"),
                Diagnostic("PDE002", "error", "arity"),
            ],
        )
        assert [d.severity for d in report] == ["error", "warning", "info"]
        assert report.exit_code() == 2

    def test_exit_codes(self):
        assert AnalysisReport.build("s", []).exit_code() == 0
        assert (
            AnalysisReport.build("s", [Diagnostic("PDE203", "info", "m")]).exit_code()
            == 0
        )
        assert (
            AnalysisReport.build(
                "s", [Diagnostic("PDE101", "warning", "m")]
            ).exit_code()
            == 1
        )
        assert (
            AnalysisReport.build("s", [Diagnostic("PDE002", "error", "m")]).exit_code()
            == 2
        )

    def test_suppression_recorded(self):
        report = AnalysisReport.build(
            "s",
            [Diagnostic("PDE101", "warning", "m"), Diagnostic("PDE101", "warning", "n")],
            ignore=["PDE101"],
        )
        assert report.clean
        assert report.exit_code() == 0
        assert ("PDE101", 2) in report.ignored

    def test_to_dict_roundtrips_through_json(self):
        report = AnalysisReport.build("s", [Diagnostic("PDE101", "warning", "m")])
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["summary"]["warnings"] == 1
        assert decoded["exit_code"] == 1


class TestWellFormednessRules:
    def test_clean_ctract_setting(self, example1_setting):
        report = analyze(example1_setting)
        assert report.clean
        assert report.exit_code() == 0

    def test_arity_mismatch_is_error(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 3},
            st="E(x, y) -> H(x, y)",
            validate=False,
        )
        report = analyze(setting)
        assert "PDE002" in codes_of(report)
        assert report.exit_code() == 2
        [diagnostic] = [d for d in report if d.code == "PDE002"]
        assert "arity 3" in diagnostic.message

    def test_unknown_relation_is_error(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> Hedge(x, y)",
            validate=False,
        )
        report = analyze(setting)
        assert "PDE001" in codes_of(report)
        [diagnostic] = [d for d in report if d.code == "PDE001"]
        assert "'Hedge'" in diagnostic.message

    def test_wrong_side_relation_is_error(self):
        # Σ_ts head writes a *target* relation: source relations only may
        # appear in Σ_ts heads.
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
            ts="H(x, y) -> H(y, x)",
            validate=False,
        )
        report = analyze(setting)
        assert "PDE003" in codes_of(report)

    def test_overlapping_schemas_reported(self):
        setting = PDESetting.from_text(
            source={"R": 2},
            target={"R": 2},
            validate=False,
        )
        report = analyze(setting)
        assert "PDE005" in codes_of(report)

    def test_span_points_at_offending_dependency(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, z), E(z, y) -> H(x, y)\nE(x, y) -> H(x, y, y)",
            validate=False,
        )
        report = analyze(setting)
        [diagnostic] = [d for d in report if d.code == "PDE002"]
        assert diagnostic.span is not None
        assert diagnostic.span.source == "sigma_st"
        assert diagnostic.span.line == 2
        assert diagnostic.location() == "sigma_st:2:1"


class TestBoundaryRules:
    """The Section-4 relaxations each carry a distinct code."""

    def test_target_egd_is_pde101(self):
        report = analyze(egd_boundary_setting())
        assert "PDE101" in codes_of(report)
        assert report.exit_code() == 1  # warning-only: NP-hard but legal

    def test_full_target_tgd_is_pde102(self):
        report = analyze(full_tgd_boundary_setting())
        assert "PDE102" in codes_of(report)
        assert report.exit_code() == 1

    def test_disjunctive_ts_is_pde103(self):
        report = analyze(coloring_setting())
        assert "PDE103" in codes_of(report)
        assert report.exit_code() == 1

    def test_condition2_failure_is_pde106(self):
        report = analyze(clique_setting())
        assert "PDE106" in codes_of(report)

    def test_non_weakly_acyclic_target_is_pde104(self):
        setting = PDESetting.from_text(
            source={"S": 1},
            target={"T": 2},
            st="S(x) -> T(x, x)",
            t="T(x, y) -> T(y, z)",
        )
        report = analyze(setting)
        assert "PDE104" in codes_of(report)
        assert "PDE107" in codes_of(report)  # existential target tgd info

    def test_weakly_acyclic_target_not_flagged(self):
        setting = PDESetting.from_text(
            source={"S": 1},
            target={"T": 2, "U": 1},
            st="S(x) -> T(x, x)",
            t="T(x, y) -> U(x)",
        )
        report = analyze(setting)
        assert "PDE104" not in codes_of(report)

    def test_distinct_codes_across_relaxations(self):
        """Acceptance criterion: the four boundary shapes are telling apart."""
        flagged = {
            "PDE101": egd_boundary_setting(),
            "PDE102": full_tgd_boundary_setting(),
            "PDE103": coloring_setting(),
            "PDE106": clique_setting(),
        }
        for expected, setting in flagged.items():
            assert expected in codes_of(analyze(setting)), expected

    def test_marked_variable_repeated_is_pde105(self):
        # A marked (null-able) variable occurring twice in a Σ_ts lhs.
        setting = PDESetting.from_text(
            source={"S": 1},
            target={"T": 2},
            st="S(x) -> T(x, y)",
            ts="T(x, x) -> S(x)",
        )
        report = analyze(setting)
        assert "PDE105" in codes_of(report)
        [diagnostic] = [d for d in report if d.code == "PDE105"]
        assert "condition 1" in diagnostic.message


class TestHygieneRules:
    def test_duplicate_dependency(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)\nE(x, y) -> H(x, y)",
        )
        report = analyze(setting)
        assert "PDE201" in codes_of(report)

    def test_subsumed_dependency(self):
        # The second tgd is implied by the first (stronger body).
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)\nE(x, y), E(y, x) -> H(x, y)",
        )
        report = analyze(setting)
        [diagnostic] = [d for d in report if d.code == "PDE202"]
        assert "sigma_st[1]" in diagnostic.message

    def test_unused_relation(self):
        setting = PDESetting.from_text(
            source={"E": 2, "Spare": 1},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
        )
        report = analyze(setting)
        [diagnostic] = [d for d in report if d.code == "PDE203"]
        assert "Spare" in diagnostic.message

    def test_dead_rule(self):
        # Σ_ts reads a target relation no tgd head ever writes.
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2, "Ghost": 1},
            st="E(x, y) -> H(x, y)",
            ts="Ghost(x) -> E(x, x)",
        )
        report = analyze(setting)
        [diagnostic] = [d for d in report if d.code == "PDE204"]
        assert "'Ghost'" in diagnostic.message

    def test_clean_setting_has_no_hygiene_findings(self, example1_setting):
        assert analyze(example1_setting).clean


class TestRawInputAnalysis:
    def test_analyze_dict_on_valid_setting(self, example1_setting):
        report = analyze_dict(setting_to_dict(example1_setting))
        assert report.clean

    def test_lint_ignore_key_suppresses(self):
        encoded = setting_to_dict(egd_boundary_setting())
        encoded["lint_ignore"] = ["PDE101"]
        report = analyze_dict(encoded)
        assert report.exit_code() == 0
        assert any(code == "PDE101" and count for code, count in report.ignored)

    def test_lint_ignore_accepts_bare_string(self):
        encoded = setting_to_dict(egd_boundary_setting())
        encoded["lint_ignore"] = "PDE101"  # shorthand for ["PDE101"]
        report = analyze_dict(encoded)
        assert report.exit_code() == 0
        assert ("PDE101", 3) in report.ignored

    def test_unparsable_dependency_is_pde000(self):
        encoded = {
            "source": {"E": 2},
            "target": {"H": 2},
            "sigma_st": ["E(x, y) -> "],
        }
        report = analyze_dict(encoded)
        assert codes_of(report) == {"PDE000"}
        assert report.exit_code() == 2

    def test_unsafe_egd_is_pde006(self):
        encoded = {
            "source": {"E": 2},
            "target": {"H": 2},
            "sigma_t": ["H(x, y) -> x = z"],
        }
        report = analyze_dict(encoded)
        assert codes_of(report) == {"PDE006"}

    def test_invalid_json_text(self):
        report = analyze_text("{not json")
        assert codes_of(report) == {"PDE000"}
        assert report.exit_code() == 2

    def test_non_object_json_text(self):
        report = analyze_text("[1, 2, 3]")
        assert codes_of(report) == {"PDE000"}

    def test_malformed_schema_survives_as_diagnostics(self):
        # An arity mismatch cannot construct with validate=True, but the
        # analyzer reports it instead of raising.
        encoded = {
            "source": {"E": 2},
            "target": {"H": 3},
            "sigma_st": ["E(x, y) -> H(x, y)"],
        }
        report = analyze_dict(encoded)
        assert "PDE002" in codes_of(report)


class TestDispatchExplanation:
    def test_in_ctract_message(self, example1_setting):
        explanation = dispatch_explanation(example1_setting)
        assert "C_tract" in explanation
        assert "Figure 3" in explanation

    def test_quotes_distinct_codes(self):
        assert "PDE101" in dispatch_explanation(egd_boundary_setting())
        assert "PDE102" in dispatch_explanation(full_tgd_boundary_setting())
        assert "PDE103" in dispatch_explanation(coloring_setting())
        assert "PDE106" in dispatch_explanation(clique_setting())

    def test_solve_attaches_dispatch_stat(self):
        setting = egd_boundary_setting()
        result = solve(setting, parse_instance("D(a, b)"), parse_instance(""))
        assert "dispatch" in result.stats
        assert "PDE101" in result.stats["dispatch"]

    def test_forced_tractable_error_explains(self):
        setting = egd_boundary_setting()
        with pytest.raises(SolverError, match="PDE101"):
            solve(
                setting,
                parse_instance("D(a, b)"),
                parse_instance(""),
                method="tractable",
            )

    def test_tractable_setting_has_no_dispatch_stat(
        self, example1_setting, triangle_ish_source, empty_target
    ):
        result = solve(example1_setting, triangle_ish_source, empty_target)
        assert "dispatch" not in result.stats


class TestCodeTable:
    def test_codes_well_formed(self):
        for code, info in CODES.items():
            assert code.startswith("PDE") and len(code) == 6
            assert info.severity in {"error", "warning", "info"}
            assert info.rule and info.summary

    def test_error_band_and_warning_band(self):
        # Band 0 is load/well-formedness: always errors.  Bands 1-2
        # (boundary, hygiene) never block.  Bands 3-4 (timeline, merge)
        # mix severities: statically-certain divergence is an error.
        for code, info in CODES.items():
            band = int(code[3])
            if band == 0:
                assert info.severity == "error"
            elif band in (1, 2):
                assert info.severity in {"warning", "info"}
            else:
                assert band in (3, 4)
