"""Unit tests for the term model (constants, nulls, variables)."""

import pytest

from repro.core.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    is_constant,
    is_null,
    is_variable,
    term_sort_key,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_str_of_string_constant(self):
        assert str(Constant("swissprot")) == "swissprot"

    def test_str_of_numeric_constant(self):
        assert str(Constant(42)) == "42"

    def test_repr_roundtrip(self):
        assert eval(repr(Constant("a"))) == Constant("a")


class TestNull:
    def test_equality_by_label_only(self):
        assert Null(3, "x") == Null(3, "y")
        assert Null(3) != Null(4)

    def test_hash_consistent_with_equality(self):
        assert hash(Null(3, "x")) == hash(Null(3, "other"))

    def test_not_equal_to_constant(self):
        assert Null(0) != Constant(0)
        assert Constant(0) != Null(0)

    def test_str_uses_hint(self):
        assert str(Null(7, "z")) == "_z7"
        assert str(Null(7)) == "_n7"

    def test_distinct_from_variable(self):
        assert Null(1) != Variable("x")


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_ordering(self):
        assert sorted([Variable("z"), Variable("a")]) == [Variable("a"), Variable("z")]


class TestPredicates:
    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Null(0))
        assert not is_constant(Variable("x"))

    def test_is_null(self):
        assert is_null(Null(0))
        assert not is_null(Constant("a"))

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant("x"))


class TestNullFactory:
    def test_fresh_labels_are_distinct(self):
        factory = NullFactory()
        labels = {factory.fresh().label for _ in range(100)}
        assert len(labels) == 100

    def test_fresh_carries_hint(self):
        assert NullFactory().fresh(hint="y").hint == "y"

    def test_above_skips_existing_labels(self):
        factory = NullFactory.above([Null(5), Null(9)])
        assert factory.fresh().label == 10

    def test_above_empty_starts_at_zero(self):
        assert NullFactory.above([]).fresh().label == 0

    def test_start_parameter(self):
        assert NullFactory(start=100).fresh().label == 100


class TestSortKey:
    def test_heterogeneous_constants_sortable(self):
        values = [Constant(2), Constant("a"), Constant(1), Constant("b")]
        ordered = sorted(values, key=term_sort_key)
        assert ordered.index(Constant(1)) < ordered.index(Constant(2))
        assert ordered.index(Constant("a")) < ordered.index(Constant("b"))

    def test_constants_before_nulls_before_variables(self):
        ordered = sorted(
            [Variable("x"), Null(0), Constant("a")], key=term_sort_key
        )
        assert ordered == [Constant("a"), Null(0), Variable("x")]

    def test_nulls_sorted_numerically(self):
        ordered = sorted([Null(10), Null(2)], key=term_sort_key)
        assert ordered == [Null(2), Null(10)]
