"""Experiment E16: containment-only acyclic PDMS is tractable; the
equality storage descriptions are what make PDE hard (Section 3.2)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_query
from repro.exceptions import SolverError
from repro.pdms import PDMS, Peer, StorageDescription, star_instance, translate_setting
from repro.reductions import certain_answer_query, clique_setting, clique_source_instance
from repro.pdms.acyclic import acyclic_certain_answers, canonical_consistent_instance
from repro.solver import certain_answers


def containment_weakened(pdms: PDMS) -> PDMS:
    """Replace every equality storage description by a containment one."""
    peers = []
    for peer in pdms.peers:
        weakened = [
            StorageDescription(d.peer_relation, d.query, "containment")
            for d in peer.storage
        ]
        peers.append(Peer(peer.name, peer.schema, peer.local_schema, weakened))
    return PDMS(peers, pdms.mappings, name=pdms.name + " (containment-only)")


class TestCanonicalInstance:
    def test_least_instance_contains_local_data(self, example1_setting):
        pdms = containment_weakened(translate_setting(example1_setting))
        from repro.core.parser import parse_instance

        local = star_instance(parse_instance("E(a, b); E(b, c)"))
        canonical = canonical_consistent_instance(pdms, local)
        assert canonical.contains_instance(local)
        # Storage descriptions copy the stars into the peer relations, the
        # Σ_st mapping derives H(a, c), and — the containment-semantics
        # hallmark — the Σ_ts mapping then grows the *source* relation with
        # the reflected E(a, c), something genuine PDE forbids.
        assert canonical.count("H") >= 1
        assert canonical.count("E") == 3

    def test_canonical_is_consistent(self, example1_setting):
        from repro.core.parser import parse_instance

        pdms = containment_weakened(translate_setting(example1_setting))
        local = star_instance(parse_instance("E(a, a)"))
        canonical = canonical_consistent_instance(pdms, local)
        assert pdms.is_consistent(local, canonical)

    def test_equality_descriptions_rejected(self, example1_setting):
        pdms = translate_setting(example1_setting)  # has equality for S
        with pytest.raises(SolverError):
            canonical_consistent_instance(pdms, Instance())


class TestSection32Contrast:
    """The paper's point: the Theorem 3 mappings are acyclic inclusions —
    harmless under containment semantics, coNP-hard under PDE."""

    def test_containment_semantics_is_clique_oblivious(self):
        setting = clique_setting()
        pdms = containment_weakened(translate_setting(setting))
        query = certain_answer_query()

        with_clique = clique_source_instance(
            [1, 2, 3], [(1, 2), (2, 3), (1, 3)], 3, draw_from_nodes=True
        )
        without_clique = clique_source_instance(
            [1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)], 3, draw_from_nodes=True
        )
        results = []
        for source in (with_clique, without_clique):
            local = star_instance(source)
            answer = acyclic_certain_answers(pdms, local, query)
            results.append(answer.boolean_value)
        # Containment-only: the target may stay empty, so the existential
        # query is never certain — regardless of cliques.
        assert results == [False, False]

    def test_pde_semantics_sees_the_clique(self):
        setting = clique_setting()
        query = certain_answer_query()
        with_clique = clique_source_instance(
            [1, 2, 3], [(1, 2), (2, 3), (1, 3)], 3, draw_from_nodes=True
        )
        without_clique = clique_source_instance(
            [1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)], 3, draw_from_nodes=True
        )
        has = certain_answers(setting, query, with_clique, Instance())
        lacks = certain_answers(setting, query, without_clique, Instance())
        # PDE: clique iff NOT certain (Theorem 3).
        assert has.boolean_value is False
        assert lacks.boolean_value is True

    def test_containment_certain_answers_sound(self, example1_setting):
        """Where both semantics apply, containment answers are a lower
        bound for PDE certain answers on the peer relations."""
        from repro.core.parser import parse_instance

        pdms = containment_weakened(translate_setting(example1_setting))
        source = parse_instance("E(a, a)")
        local = star_instance(source)
        query = parse_query("q(x, y) :- H(x, y)")
        containment = acyclic_certain_answers(pdms, local, query)
        pde = certain_answers(example1_setting, query, source, Instance())
        assert containment.answers <= pde.answers


class TestTractability:
    def test_polynomial_scaling(self):
        """Canonical-chase certain answers stay fast as instances grow."""
        import time

        from repro.core.parser import parse_instance

        setting = clique_setting()
        pdms = containment_weakened(translate_setting(setting))
        query = certain_answer_query()
        timings = []
        for n in (4, 8, 16):
            source = clique_source_instance(
                list(range(n)),
                [(i, i + 1) for i in range(n - 1)],
                3,
                draw_from_nodes=True,
            )
            local = star_instance(source)
            started = time.perf_counter()
            acyclic_certain_answers(pdms, local, query)
            timings.append(time.perf_counter() - started)
        # Generous envelope: quadrupling the size must stay far below an
        # exponential blow-up.
        assert timings[-1] < max(timings[0], 0.001) * 500
