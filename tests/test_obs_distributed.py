"""The distributed observability plane, end to end.

Covers the PR-8 surface: wire trace context (:class:`repro.obs.
TraceContext`), the cross-file stitcher (:func:`repro.obs.stitch`), the
crash flight recorder (:class:`repro.obs.FlightRecorder`), the unified
metric name table (:mod:`repro.obs.names`), convergence-lag arithmetic
(:func:`repro.sync.watermark_lag`), the daemon's ``STATS`` frame +
:func:`repro.netd.fetch_stats`, the self-describing ``chaos.*`` events,
the ``repro.cli obs`` toolbox, and — the acceptance scenario — a chaos
run under :func:`repro.netd.run_scenario_netd` whose stitched timeline
links one publish across peers, whose killed peer leaves a readable
post-mortem, and whose convergence report shows every lag at 0.
"""

import asyncio
import json
import re
import threading
from pathlib import Path

import pytest

from repro.cli import EXIT_DEGRADED, main
from repro.core.parser import parse_instance
from repro.exceptions import TraceError
from repro.net import (
    NetworkSimulator,
    crash_scenario,
    registry_scenario,
    registry_setting,
)
from repro.netd import (
    ChaosProxy,
    PublisherClient,
    SyncDaemon,
    fetch_stats,
    run_scenario_netd,
)
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    TraceContext,
    canonical_metric_name,
    metric_documented,
    read_postmortem,
    stitch,
    undocumented,
    write_trace_jsonl,
)
from repro.runtime import FaultSchedule
from repro.sync import Stamp, watermark_lag

SNAPSHOTS = [
    parse_instance("reg(a, 1)"),
    parse_instance("reg(a, 1); reg(b, 2)"),
    parse_instance("reg(b, 2); reg(c, 3)"),
]


def run(coroutine):
    return asyncio.run(coroutine)


async def _daemon(tmp_path, peers=("peer-a",), **kwargs):
    daemon = SyncDaemon(
        registry_setting(),
        list(peers),
        journal_dir=tmp_path / "journals",
        **kwargs,
    )
    await daemon.start()
    return daemon


async def _client(address, peer="peer-a", **kwargs):
    kwargs.setdefault("ack_timeout", 2.0)
    client = PublisherClient(address, peer, **kwargs)
    await client.start()
    return client


# ----------------------------------------------------------------------
# TraceContext: deterministic ids, wire codec, leniency
# ----------------------------------------------------------------------


def test_trace_context_is_deterministic_stamp_arithmetic():
    # Same sender + stamp → identical ids everywhere, no coordination.
    first = TraceContext.for_publish("origin", Stamp(2, 5))
    second = TraceContext.for_publish("origin", (2, 5))
    assert first.trace_id == second.trace_id == "origin:2.5"
    assert first.span_id == "origin:2.5:publish"
    assert first.parent_id is None


def test_trace_context_child_parents_on_the_upstream_span():
    publish = TraceContext.for_publish("origin", Stamp(1, 3), at=12.5)
    ingest = publish.child("peer-a:ingest")
    assert ingest.trace_id == publish.trace_id
    assert ingest.span_id == "origin:1.3:peer-a:ingest"
    assert ingest.parent_id == publish.span_id
    assert ingest.published_at == 12.5


def test_trace_context_wire_roundtrip():
    publish = TraceContext.for_publish("origin", Stamp(1, 1), at=3.25)
    assert TraceContext.from_wire(publish.to_wire()) == publish
    child = publish.child("peer-b:apply")
    assert TraceContext.from_wire(child.to_wire()) == child
    # Origin contexts omit the optional keys on the wire.
    assert "p" not in publish.to_wire()
    assert TraceContext.for_publish("o", (1, 1)).to_wire() == {
        "t": "o:1.1", "s": "o:1.1:publish",
    }


@pytest.mark.parametrize(
    "dented",
    [
        None,
        "origin:1.1",
        42,
        [],
        {},
        {"t": "origin:1.1"},
        {"s": "origin:1.1:publish"},
        {"t": 7, "s": "origin:1.1:publish"},
    ],
)
def test_trace_context_from_wire_is_lenient(dented):
    # A dented envelope must never fail the frame it rides on.
    assert TraceContext.from_wire(dented) is None


def test_trace_context_from_wire_drops_malformed_optionals():
    decoded = TraceContext.from_wire(
        {"t": "o:1.1", "s": "o:1.1:publish", "p": 9, "at": True}
    )
    assert decoded is not None
    assert decoded.parent_id is None
    assert decoded.published_at is None


def test_trace_context_annotate_uses_plain_attributes():
    # Schema stays at v1: correlation lives in ordinary attributes.
    tracer = Tracer()
    context = TraceContext.for_publish("origin", Stamp(1, 1)).child("peer-a:ingest")
    with tracer.span("netd.ingest") as span:
        context.annotate(span)
    recorded = tracer.find("netd.ingest")
    assert recorded.attributes["ctx.trace"] == "origin:1.1"
    assert recorded.attributes["ctx.span"] == "origin:1.1:peer-a:ingest"
    assert recorded.attributes["ctx.parent"] == "origin:1.1:publish"


# ----------------------------------------------------------------------
# watermark lag: the shared convergence-lag primitive
# ----------------------------------------------------------------------


def test_watermark_lag_counts_publishes_above_the_mark():
    published = [Stamp(1, 1), Stamp(1, 2), Stamp(2, 1)]
    assert watermark_lag(published, None) == 3
    assert watermark_lag(published, Stamp(1, 1)) == 2
    assert watermark_lag(published, (1, 2)) == 1
    assert watermark_lag(published, Stamp(2, 1)) == 0
    assert watermark_lag([], None) == 0
    # Tuples and Stamps are interchangeable: pure stamp arithmetic.
    assert watermark_lag([(1, 1), (1, 2)], (1, 1)) == 1


# ----------------------------------------------------------------------
# flight recorder: ring, flush, torn-tail reader
# ----------------------------------------------------------------------


def test_flight_recorder_ring_evicts_oldest():
    ticks = iter(range(100))
    recorder = FlightRecorder(capacity=4, clock=lambda: float(next(ticks)))
    for index in range(10):
        recorder.record("tick", index=index)
    assert len(recorder) == 4
    assert recorder.recorded == 10
    assert recorder.dropped == 6
    assert [event["attributes"]["index"] for event in recorder.events()] == [
        6, 7, 8, 9,
    ]


def test_flight_recorder_rejects_zero_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_flight_recorder_flush_and_read_roundtrip(tmp_path):
    recorder = FlightRecorder(capacity=3, clock=lambda: 1.0)
    for index in range(5):
        recorder.record("netd.ingest", index=index, stamp=f"1.{index}")
    path = recorder.flush(tmp_path / "peer.postmortem.jsonl", reason="crash")
    postmortem = read_postmortem(path)
    assert postmortem.reason == "crash"
    assert postmortem.recorded == 5
    assert postmortem.dropped == 2
    assert [event["attributes"]["index"] for event in postmortem.events] == [2, 3, 4]
    assert [event["attributes"]["index"] for event in postmortem.last(2)] == [3, 4]
    assert postmortem.last(0) == []


def test_flight_recorder_reader_tolerates_torn_tail(tmp_path):
    recorder = FlightRecorder(capacity=8, clock=lambda: 1.0)
    for index in range(3):
        recorder.record("tick", index=index)
    path = recorder.flush(tmp_path / "torn.postmortem.jsonl", reason="abort")
    # A crash mid-flush leaves a torn final line; the prefix must read.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "event", "name": "tr')
    postmortem = read_postmortem(path)
    assert postmortem.reason == "abort"
    assert len(postmortem.events) == 3


def test_read_postmortem_rejects_foreign_files(tmp_path):
    path = tmp_path / "not-a-postmortem.jsonl"
    path.write_text('{"type": "header", "format": "elsewhere", "version": 1}\n')
    with pytest.raises(TraceError):
        read_postmortem(path)


# ----------------------------------------------------------------------
# stitch: concurrent writers, torn lines, lane attribution
# ----------------------------------------------------------------------


def _traced_publish(tracer, sender, seq, site):
    context = TraceContext.for_publish(sender, Stamp(1, seq))
    with tracer.span("netd.publish", stamp=f"1.{seq}") as span:
        context.annotate(span)
    return context


def test_stitch_survives_concurrent_writers_and_torn_tail(tmp_path):
    # Two writers, one publish each; writer B's file ends mid-record the
    # way a concurrent flush tears it.  Stitch must not raise TraceError.
    writer_a, writer_b = Tracer(), Tracer()
    context = _traced_publish(writer_a, "origin", 1, "publish")
    with writer_b.span("netd.ingest") as span:
        context.child("peer-b:ingest").annotate(span)
    path_a = tmp_path / "peer-a.jsonl"
    path_b = tmp_path / "peer-b.jsonl"
    write_trace_jsonl(writer_a, path_a)
    write_trace_jsonl(writer_b, path_b)
    with open(path_b, "a", encoding="utf-8") as handle:
        handle.write('{"type": "span", "name": "torn-mid-wri')
    timeline = stitch({"peer-a": path_a, "peer-b": path_b})
    assert timeline.corrupt_lines == 1
    assert set(timeline.lanes) >= {"peer-a", "peer-b"}
    spans = timeline.traces()["origin:1.1"]
    assert {span.lane for span in spans} == {"peer-a", "peer-b"}
    # Causal order: the publish precedes the ingest it parented.
    names = [span.name for span in spans]
    assert names.index("netd.publish") < names.index("netd.ingest")


def test_stitch_span_lane_attribute_overrides_file_label(tmp_path):
    tracer = Tracer()
    with tracer.span("netd.ingest", lane="peer-c"):
        pass
    path = tmp_path / "daemon.jsonl"
    write_trace_jsonl(tracer, path)
    timeline = stitch([path])
    assert timeline.spans[0].lane == "peer-c"
    assert timeline.lanes == ["peer-c"]


def test_stitch_accepts_repeated_headers(tmp_path):
    # A re-opened writer re-emits its header; the lenient reader skips it.
    first, second = Tracer(), Tracer()
    with first.span("round-one"):
        pass
    with second.span("round-two"):
        pass
    path = tmp_path / "reopened.jsonl"
    tail = tmp_path / "tail.jsonl"
    write_trace_jsonl(first, path)
    write_trace_jsonl(second, tail)
    path.write_text(path.read_text() + tail.read_text())
    timeline = stitch({"daemon": path})
    assert {span.name for span in timeline.spans} == {"round-one", "round-two"}
    assert timeline.corrupt_lines == 0


def test_stitch_chrome_export_one_lane_per_peer(tmp_path):
    writer_a, writer_b = Tracer(), Tracer()
    context = _traced_publish(writer_a, "origin", 1, "publish")
    with writer_b.span("netd.ingest") as span:
        context.child("peer-b:ingest").annotate(span)
    path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace_jsonl(writer_a, path_a)
    write_trace_jsonl(writer_b, path_b)
    timeline = stitch({"origin": path_a, "peer-b": path_b})
    dump = timeline.chrome()
    lanes = {
        record["args"]["name"]: record["tid"]
        for record in dump["traceEvents"]
        if record.get("ph") == "M"
    }
    assert set(lanes) == {"origin", "peer-b"}
    assert len(set(lanes.values())) == 2
    by_tid = {
        record["name"]: record["tid"]
        for record in dump["traceEvents"]
        if record.get("ph") == "X"
    }
    assert by_tid["netd.publish"] == lanes["origin"]
    assert by_tid["netd.ingest"] == lanes["peer-b"]


# ----------------------------------------------------------------------
# the metric name table: completeness and deprecation shims
# ----------------------------------------------------------------------

_METRIC_CALL = re.compile(
    r"""\.(?:counter|gauge|histogram)\(\s*f?["']([^"']+)["']"""
)


def test_every_emitted_network_metric_is_documented():
    # Static scan: every net.*/netd.*/chaos.* literal the source passes
    # to a registry instrument must appear in the name table (f-string
    # placeholders collapse to the wildcard families).
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    emitted: set[str] = set()
    for path in sorted(src.rglob("*.py")):
        for name in _METRIC_CALL.findall(path.read_text(encoding="utf-8")):
            name = re.sub(r"\{[^}]*\}", "*", name)
            if name in ("net.*", "netd.*", "chaos.*"):
                # Fully dynamic leaf (f"chaos.{counter}"): unresolvable
                # statically; the selfcheck runtime audit covers these.
                continue
            if name.startswith(("net.", "netd.", "chaos.")):
                emitted.add(name)
    assert emitted, "the scan found no network metric emissions at all"
    missing = undocumented(emitted)
    assert not missing, f"undocumented metric name(s): {missing}"


def test_deprecated_metric_names_alias_one_instrument():
    registry = MetricsRegistry()
    registry.counter("net.delta_fallback").inc()
    registry.counter("net.delta_fallbacks").inc(2)
    # Both names address the same counter, keyed canonically.
    assert registry.counter("net.delta_fallback") is registry.counter(
        "net.delta_fallbacks"
    )
    counters = registry.snapshot()["counters"]
    assert counters["net.delta_fallbacks"] == 3
    assert "net.delta_fallback" not in counters


def test_metric_name_helpers():
    assert canonical_metric_name("net.delta_fallback") == "net.delta_fallbacks"
    assert canonical_metric_name("net.sent") == "net.sent"
    assert metric_documented("netd.rounds.applied")  # wildcard family
    assert metric_documented("netd.lag.peer-b")
    assert metric_documented("net.delta_fallback")  # via the shim
    assert metric_documented("solve.duration_ms")  # not this table's business
    assert not metric_documented("netd.made_up")
    assert undocumented(["net.sent", "chaos.nonsense"]) == ["chaos.nonsense"]


# ----------------------------------------------------------------------
# simulator: ctx-linked spans, lag, publish→apply latency
# ----------------------------------------------------------------------


def test_simulator_propagates_context_and_reports_lag():
    tracer = Tracer()
    metrics = MetricsRegistry()
    simulator = NetworkSimulator(registry_scenario(0), tracer=tracer, metrics=metrics)
    simulator.run()
    report = simulator.check_convergence()
    assert report.converged
    assert report.lag, "convergence report carries per-peer lag"
    assert all(lag == 0 for lag in report.lag.values())

    publishes = {
        span.attributes["ctx.span"]: span
        for span in tracer.spans()
        if span.name == "net.publish" and "ctx.span" in span.attributes
    }
    applies = [
        span for span in tracer.spans()
        if span.name == "net.apply" and "ctx.parent" in span.attributes
    ]
    assert publishes and applies
    # Every apply parents on a recorded publish within the same trace.
    for span in applies:
        parent = publishes[span.attributes["ctx.parent"]]
        assert span.attributes["ctx.trace"] == parent.attributes["ctx.trace"]

    histograms = metrics.snapshot()["histograms"]
    assert histograms["net.publish_apply_ms"]["count"] > 0


# ----------------------------------------------------------------------
# daemon: STATS frame, fetch_stats, lag gauges, post-mortems
# ----------------------------------------------------------------------


def test_daemon_stats_payload_and_fetch_stats(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path, peers=("peer-a", "peer-b"))
        client = await _client(daemon.address)
        for index, snapshot in enumerate(SNAPSHOTS):
            assert await client.publish(Stamp(1, index + 1), snapshot) == "applied"
        await client.close()

        # The one-shot probe needs no HELLO and matches the local payload.
        payload = await fetch_stats(daemon.address)
        assert payload["state"] == "serving"
        peers = payload["peers"]
        assert set(peers) == {"peer-a", "peer-b"}
        assert peers["peer-a"]["watermark"] == [1, 3]
        assert peers["peer-a"]["lag"] == 0
        assert peers["peer-a"]["crashed"] is False
        # peer-b never received a publish: it lags the full history.
        assert peers["peer-b"]["watermark"] is None
        assert peers["peer-b"]["lag"] == 3
        assert daemon.lag("peer-b") == 3
        await daemon.stop()

    run(scenario())


def test_daemon_crash_flushes_postmortem_and_marks_stats(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        client = await _client(daemon.address)
        assert await client.publish(Stamp(1, 1), SNAPSHOTS[0]) == "applied"
        await client.close()

        daemon.crash_peer("peer-a")
        payload = daemon.stats_payload()
        assert payload["peers"]["peer-a"]["crashed"] is True

        postmortems = list(daemon.postmortems)
        assert postmortems, "crash_peer flushed a post-mortem"
        path = postmortems[-1]
        assert path.name == "peer-a.postmortem.jsonl"
        postmortem = read_postmortem(path)
        assert postmortem.reason == "crash"
        names = [event["name"] for event in postmortem.events]
        assert "netd.ingest" in names
        assert "netd.peer_crashed" in names
        await daemon.stop()
        # The graceful stop leaves its own flight-recorder flush.
        reasons = {
            read_postmortem(p).reason for p in daemon.postmortems
        }
        assert reasons == {"crash", "stop"}

    run(scenario())


def test_daemon_lag_gauge_and_latency_histogram(tmp_path):
    async def scenario():
        metrics = MetricsRegistry()
        daemon = await _daemon(tmp_path, metrics=metrics)
        client = await _client(daemon.address)
        assert await client.publish(Stamp(1, 1), SNAPSHOTS[0]) == "applied"
        await client.close()
        await daemon.stop()
        snapshot = metrics.snapshot()
        assert snapshot["gauges"]["netd.lag.peer-a"] == 0
        assert snapshot["histograms"]["netd.publish_apply_ms"]["count"] == 1
        assert snapshot["counters"]["netd.rounds.applied"] == 1

    run(scenario())


# ----------------------------------------------------------------------
# chaos proxy: self-describing chaos.* events
# ----------------------------------------------------------------------


def test_chaos_events_carry_index_frame_and_trace(tmp_path):
    async def scenario():
        daemon = await _daemon(tmp_path)
        tracer = Tracer()
        schedule = FaultSchedule(
            drop=frozenset({1}),
            duplicate=frozenset({3}),
            reorder=frozenset({4}),
            delay={5: 0.2},
        )
        proxy = ChaosProxy(
            daemon.address,
            schedule=schedule,
            latency=0.02,
            time_scale=0.01,
            tracer=tracer,
        )
        await proxy.start()
        client = await _client(proxy.address, ack_timeout=0.4)
        for seq in range(1, 7):
            await client.publish(Stamp(1, seq), SNAPSHOTS[seq % 3])
        await client.close()
        await proxy.stop()
        await daemon.stop()
        return tracer

    tracer = run(scenario())
    events = {
        name: [e for e in tracer.orphan_events if e["name"] == name]
        for name in ("chaos.drop", "chaos.duplicate", "chaos.reorder", "chaos.delay")
    }
    for name, found in events.items():
        assert found, f"no {name} event recorded"
    # Every fault names the delivery it hit, describes the frame it saw,
    # and carries the publish's wire trace id for stitching.
    assert events["chaos.drop"][0]["attributes"]["index"] == 1
    for found in events.values():
        attributes = found[0]["attributes"]
        assert attributes["frame"].startswith(("snapshot(", "delta("))
        assert "ctx" in attributes["frame"]
        assert re.fullmatch(r"origin:\d+\.\d+", attributes["trace"])
    assert events["chaos.delay"][0]["attributes"]["delay"] == pytest.approx(0.2)
    assert events["chaos.reorder"][0]["attributes"]["hold"] == pytest.approx(
        4 * 0.02
    )


# ----------------------------------------------------------------------
# the CLI obs toolbox
# ----------------------------------------------------------------------


def _write_two_lane_traces(tmp_path):
    writer_a, writer_b = Tracer(), Tracer()
    context = _traced_publish(writer_a, "origin", 1, "publish")
    with writer_b.span("netd.ingest") as span:
        context.child("peer-b:ingest").annotate(span)
    path_a, path_b = tmp_path / "origin.jsonl", tmp_path / "peer-b.jsonl"
    write_trace_jsonl(writer_a, path_a)
    write_trace_jsonl(writer_b, path_b)
    return path_a, path_b


def test_cli_obs_stitch_renders_and_exports_chrome(tmp_path, capsys):
    path_a, path_b = _write_two_lane_traces(tmp_path)
    chrome = tmp_path / "stitched.json"
    code = main([
        "obs", "stitch", f"origin={path_a}", str(path_b), "--chrome", str(chrome),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "trace origin:1.1" in out
    assert "netd.publish" in out and "netd.ingest" in out
    dump = json.loads(chrome.read_text())
    lanes = {
        record["args"]["name"]
        for record in dump["traceEvents"]
        if record.get("ph") == "M"
    }
    assert lanes == {"origin", "peer-b"}


def test_cli_obs_stitch_unreadable_file_exits_2(tmp_path, capsys):
    code = main(["obs", "stitch", str(tmp_path / "missing.jsonl")])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot read trace" in captured.err


def test_cli_obs_postmortem_renders_the_tail(tmp_path, capsys):
    recorder = FlightRecorder(capacity=4, clock=lambda: 2.0)
    for index in range(6):
        recorder.record("netd.ingest", peer="peer-a", index=index)
    path = recorder.flush(tmp_path / "peer-a.postmortem.jsonl", reason="crash")
    code = main(["obs", "postmortem", str(path), "--last", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "reason: crash" in out
    assert "(showing the last 2 of 4)" in out
    assert "netd.ingest" in out
    assert "index=5" in out and "index=3" not in out


def test_cli_obs_postmortem_unreadable_exits_2(tmp_path, capsys):
    code = main(["obs", "postmortem", str(tmp_path / "missing.jsonl")])
    assert code == 2
    assert capsys.readouterr().err


def test_cli_obs_top_rejects_bad_address(capsys):
    code = main(["obs", "top", "not-an-address"])
    assert code == 2
    assert "neither HOST:PORT nor unix:PATH" in capsys.readouterr().err


def test_cli_obs_top_reports_unreachable_as_degraded(capsys):
    code = main(["obs", "top", "127.0.0.1:1", "--timeout", "0.5"])
    out = capsys.readouterr().out
    assert code == EXIT_DEGRADED
    assert "unreachable" in out


def test_cli_obs_top_polls_a_live_daemon(tmp_path, capsys):
    # The daemon runs in a worker thread's event loop; the CLI probes it
    # over TCP from this thread, exactly as a real operator would.
    started = threading.Event()
    stop = threading.Event()
    holder = {}

    def serve():
        async def body():
            daemon = await _daemon(tmp_path, peers=("peer-a", "peer-b"))
            client = await _client(daemon.address)
            await client.publish(Stamp(1, 1), SNAPSHOTS[0])
            await client.close()
            holder["address"] = daemon.address
            started.set()
            while not stop.is_set():
                await asyncio.sleep(0.02)
            await daemon.stop()

        asyncio.run(body())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(5.0), "daemon thread never came up"
    host, port = holder["address"]
    try:
        code = main(["obs", "top", f"{host}:{port}", "--json"])
    finally:
        stop.set()
        thread.join(5.0)
    out = capsys.readouterr().out
    assert code == 0
    results = json.loads(out)
    payload = results[f"{host}:{port}"]
    assert payload["state"] == "serving"
    assert payload["peers"]["peer-a"]["watermark"] == [1, 1]
    assert payload["peers"]["peer-a"]["lag"] == 0
    assert payload["peers"]["peer-b"]["lag"] == 1


# ----------------------------------------------------------------------
# profile CLI: --trace/--chrome parity through the one exporter path
# ----------------------------------------------------------------------


def test_cli_profile_trace_and_chrome_share_the_exporter(tmp_path, capsys):
    trace = tmp_path / "profile.jsonl"
    chrome = tmp_path / "profile.json"
    code = main([
        "profile", "genomics", "--size", "3",
        "--trace", str(trace), "--chrome", str(chrome),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert trace.exists() and chrome.exists()
    # Both exports describe the same spans: the JSONL span names all
    # appear in the Chrome dump and vice versa.
    jsonl_names = {
        record["name"]
        for record in map(json.loads, trace.read_text().splitlines())
        if record.get("type") == "span"
    }
    chrome_names = {
        record["name"]
        for record in json.loads(chrome.read_text())["traceEvents"]
        if record.get("ph") == "X"
    }
    assert jsonl_names == chrome_names
    assert f"spans written to {trace}" in captured.err
    assert f"chrome trace written to {chrome}" in captured.err


# ----------------------------------------------------------------------
# acceptance: the chaos run, stitched, with a post-mortem and zero lag
# ----------------------------------------------------------------------


def test_crash_scenario_stitches_postmortems_and_converges(tmp_path):
    report = run_scenario_netd(
        crash_scenario(7),
        journal_dir=tmp_path / "journals",
        trace_dir=tmp_path / "traces",
    )
    assert report.converged

    # (1) Convergence lag: every peer's watermark caught up at quiescence.
    assert report.lag
    assert all(lag == 0 for lag in report.lag.values())

    # (2) The stitched timeline links one publish across >= 2 peers:
    # the publisher's netd.publish span (lane "origin") parents daemon
    # ingest spans recorded under per-peer lanes — different tracers,
    # one correlation id.
    assert set(report.trace_files) == {"publisher", "daemon", "chaos"}
    timeline = stitch(report.trace_files)
    linked = []
    for trace_id, spans in timeline.traces().items():
        if trace_id is None:
            continue
        publish_lanes = {s.lane for s in spans if s.name == "netd.publish"}
        ingest_lanes = {s.lane for s in spans if s.name == "netd.ingest"}
        if "origin" in publish_lanes and len(ingest_lanes) >= 2:
            linked.append(trace_id)
    assert linked, "no publish trace links origin to >= 2 peer lanes"
    spans = timeline.traces()[linked[0]]
    publish = next(s for s in spans if s.name == "netd.publish")
    for ingest in (s for s in spans if s.name == "netd.ingest"):
        assert ingest.parent_id == publish.span_id

    # (3) The killed peer left a non-empty, readable post-mortem.
    crashed = [p for p in report.postmortems if p.name == "peer-b.postmortem.jsonl"]
    assert crashed, "no post-mortem for the SIGKILLed peer"
    postmortem = read_postmortem(crashed[0])
    assert postmortem.reason == "crash"
    assert postmortem.events
    assert any(event["name"] == "netd.peer_crashed" for event in postmortem.events)
