"""Unit tests for the text frontend."""

import pytest

from repro.core.dependencies import EGD, TGD, DisjunctiveTGD
from repro.core.parser import (
    NullInterner,
    parse_dependencies,
    parse_dependency,
    parse_instance,
    parse_query,
)
from repro.core.query import ConjunctiveQuery
from repro.core.schema import Schema
from repro.core.terms import Constant, Variable
from repro.exceptions import ParseError


class TestDependencyParsing:
    def test_simple_tgd(self):
        tgd = parse_dependency("E(x, z), E(z, y) -> H(x, y)")
        assert isinstance(tgd, TGD)
        assert len(tgd.body) == 2
        assert len(tgd.head) == 1

    def test_existentials_inferred(self):
        tgd = parse_dependency("D(x, y) -> P(x, z, y, w)")
        assert tgd.existential_variables() == {Variable("z"), Variable("w")}

    def test_egd(self):
        egd = parse_dependency("P(x, y), P(x, y2) -> y = y2")
        assert isinstance(egd, EGD)

    def test_disjunctive(self):
        dep = parse_dependency("E(x, y) -> (R(x)) | (B(x)) | (G(x))")
        assert isinstance(dep, DisjunctiveTGD)
        assert len(dep.disjuncts) == 3

    def test_constants_in_dependency(self):
        tgd = parse_dependency("E(x, 'special') -> H(x, 42)")
        assert Constant("special") in tgd.body[0].constants()
        assert Constant(42) in tgd.head[0].constants()

    def test_primed_variable_names(self):
        tgd = parse_dependency("P(x, z), P(x, z') -> S(z, z')")
        assert Variable("z'") in tgd.body_variables()

    def test_label(self):
        tgd = parse_dependency("E(x, y) -> H(x, y)", label="copy")
        assert tgd.label == "copy"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency("E(x, y) -> H(x, y) H(y, x)")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency("E(x, y)")

    def test_egd_requires_variables(self):
        with pytest.raises(ParseError):
            parse_dependency("E(x, y) -> x = 'a'")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency("E(x, y -> H(x, y)")

    def test_parse_dependencies_block(self):
        block = """
            # source-to-target
            E(x, z), E(z, y) -> H(x, y)
            H(x, y) -> E(x, y)  # exact view back
        """
        deps = parse_dependencies(block)
        assert len(deps) == 2

    def test_parse_dependencies_semicolons(self):
        deps = parse_dependencies("E(x, y) -> H(x, y); H(x, y) -> E(x, y)")
        assert len(deps) == 2


class TestInstanceParsing:
    def test_simple(self):
        instance = parse_instance("E(a, b); E(b, c)")
        assert len(instance) == 2

    def test_bare_names_are_constants(self):
        instance = parse_instance("E(a, b)")
        assert Constant("a") in instance.active_domain()

    def test_numbers(self):
        instance = parse_instance("E(1, 2)")
        assert Constant(1) in instance.active_domain()

    def test_quoted_strings(self):
        instance = parse_instance("E('hello world?', b)")
        assert Constant("hello world?") in instance.active_domain()

    def test_nulls_with_underscore(self):
        instance = parse_instance("E(a, _n); E(_n, b)")
        nulls = instance.nulls()
        assert len(nulls) == 1

    def test_distinct_null_names_distinct_nulls(self):
        instance = parse_instance("E(_n1, _n2)")
        assert len(instance.nulls()) == 2

    def test_shared_interner_across_strings(self):
        interner = NullInterner()
        first = parse_instance("E(a, _n)", interner=interner)
        second = parse_instance("F(_n)", interner=interner)
        assert first.nulls() == second.nulls()

    def test_comments_and_blank_lines(self):
        instance = parse_instance(
            """
            # the triangle-ish instance
            E(a, b)
            E(b, c)  # second edge
            """
        )
        assert len(instance) == 2

    def test_schema_enforced(self):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            parse_instance("E(a)", schema=Schema.from_arities({"E": 2}))

    def test_newline_separated(self):
        instance = parse_instance("E(a, b)\nE(b, c)")
        assert len(instance) == 2


class TestQueryParsing:
    def test_boolean_query(self):
        query = parse_query("H(x, y), H(y, z)")
        assert isinstance(query, ConjunctiveQuery)
        assert query.is_boolean

    def test_rule_form(self):
        query = parse_query("q(x, z) :- H(x, y), H(y, z)")
        assert query.free == (Variable("x"), Variable("z"))
        assert query.name == "q"

    def test_rule_head_must_use_variables(self):
        with pytest.raises(ParseError):
            parse_query("q('a') :- H(x, y)")

    def test_free_variable_must_occur_in_body(self):
        from repro.exceptions import DependencyError

        with pytest.raises(DependencyError):
            parse_query("q(u) :- H(x, y)")


class TestProvenance:
    """Dependency objects carry the token positions they were parsed from."""

    def test_parse_dependency_default_provenance(self):
        dependency = parse_dependency("E(x, y) -> H(x, y)")
        assert dependency.provenance is not None
        assert dependency.provenance.text == "E(x, y) -> H(x, y)"
        assert dependency.provenance.line == 1

    def test_parse_dependencies_tracks_lines_and_columns(self):
        text = "E(x, z), E(z, y) -> H(x, y)\n# comment\n  H(x, y) -> E(x, y)"
        first, second = parse_dependencies(text, source="sigma_st")
        assert (first.provenance.line, first.provenance.column) == (1, 1)
        assert (second.provenance.line, second.provenance.column) == (3, 3)
        assert second.provenance.source == "sigma_st"
        assert second.provenance.label() == "sigma_st:3:3"

    def test_semicolon_separated_columns(self):
        text = "E(x, y) -> H(x, y); H(x, y) -> E(x, y)"
        first, second = parse_dependencies(text)
        assert first.provenance.column == 1
        assert second.provenance.column == 21

    def test_provenance_does_not_affect_equality(self):
        plain = parse_dependency("E(x, y) -> H(x, y)")
        (tracked,) = parse_dependencies("\n\nE(x, y) -> H(x, y)")
        assert plain == tracked
        assert tracked.provenance.line == 3


class TestParseErrorPositions:
    """ParseError carries real token positions, rendered as line/column."""

    def test_missing_rhs_points_past_arrow(self):
        with pytest.raises(ParseError) as exc_info:
            parse_dependency("E(x, y) ->   ")
        assert exc_info.value.position == 10  # just past the arrow token

    def test_query_head_argument_position(self):
        with pytest.raises(ParseError) as exc_info:
            parse_query("  q(1) :- E(x, y)")
        assert exc_info.value.position == 2  # at the head atom, not position 0

    def test_line_and_column_in_message(self):
        with pytest.raises(ParseError) as exc_info:
            parse_dependencies("E(x, y) -> H(x, y)\nE(x y) -> H(x, y)")
        error = exc_info.value
        assert error.line == 1  # segment-relative text starts at the segment
        assert "line 1, column" in str(error)

    def test_multiline_error_derives_line(self):
        error = ParseError("boom", text="ab\ncd\nef", position=4)
        assert (error.line, error.column) == (2, 2)
        assert "line 2, column 2" in str(error)
