"""Structural tests for the Section 5 machinery behind Theorem 4.

These tests execute the *proof structure*, not just the end-to-end
algorithm: the homomorphism diagram of Theorem 5 (Figure 2), and the
block-origin lemmas (Lemmas 6-8) that bound the nulls per block.
"""

import pytest

from repro.core.blocks import decompose_into_blocks
from repro.core.chase import chase
from repro.core.homomorphism import has_instance_homomorphism
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.solver import canonical_instances, enumerate_solutions, solve


@pytest.fixture
def lav_setting() -> PDESetting:
    """Condition 2.1 (single-literal Σ_ts bodies) with existentials on
    both sides — the hard case for the lemmas."""
    return PDESetting.from_text(
        source={"S": 2},
        target={"T": 2},
        st="S(x1, x2) -> T(x1, y)",
        ts="T(x1, x2) -> S(w, x2)",
    )


@pytest.fixture
def condition22_setting() -> PDESetting:
    """Condition 2.2 via full Σ_st: marked variables are Σ_ts existentials."""
    return PDESetting.from_text(
        source={"S": 2},
        target={"T": 2},
        st="S(x1, x2) -> T(x2, x1)",
        ts="T(x1, x2) -> S(w1, w2), S(w2, x1)",
    )


class TestTheorem5Diagram:
    """Figure 2: the four homomorphism arrows of the (⇒) direction."""

    def chase_ts(self, setting, target_instance):
        """Chase (J?, ∅) with Σ_ts and return the source part."""
        combined = Instance(schema=setting.combined_schema)
        combined.add_all(target_instance)
        result = chase(combined, setting.sigma_ts)
        return result.instance.restrict_to(setting.source_schema)

    def test_arrows_compose(self, lav_setting):
        source = parse_instance("S(a, b); S(c, d)")
        target = Instance()
        j_can, i_can, _stats = canonical_instances(lav_setting, source, target)

        result = solve(lav_setting, source, target)
        assert result.exists
        j_sol = result.solution

        # Arrow 1: J_can -> J_sol (Lemma 3).
        assert has_instance_homomorphism(j_can, j_sol)

        # I' = chase of (J_sol, ∅) with Σ_ts.
        i_prime = self.chase_ts(lav_setting, j_sol)

        # Arrow 2: I_can -> I' (Lemma 4, chases of hom-related instances).
        assert has_instance_homomorphism(i_can, i_prime)

        # Arrow 3: I' -> I (J_sol is a solution, so its Σ_ts requirements
        # embed into the immutable source).
        assert has_instance_homomorphism(i_prime, source)

        # Arrow 4 (the composition): I_can -> I — Theorem 5's criterion.
        assert has_instance_homomorphism(i_can, source)

    def test_criterion_negative_direction(self, lav_setting):
        # No S-fact can back the required Σ_ts conclusion: T's x2-null maps
        # to S's second column, but S is empty in the relevant spot.
        source = parse_instance("S(a, b)")
        target = parse_instance("T(q, r)")  # requires S(_, r): absent
        j_can, i_can, _stats = canonical_instances(lav_setting, source, target)
        assert not has_instance_homomorphism(i_can, source)
        assert not solve(lav_setting, source, target).exists

    def test_criterion_matches_solver_on_grid(self, lav_setting):
        sources = [
            "S(a, b)",
            "S(a, b); S(b, a)",
            "S(a, a)",
        ]
        targets = ["", "T(a, b)", "T(q, b)", "T(q, r)"]
        for source_text in sources:
            for target_text in targets:
                source = parse_instance(source_text)
                target = parse_instance(target_text)
                j_can, i_can, _stats = canonical_instances(
                    lav_setting, source, target
                )
                criterion = has_instance_homomorphism(i_can, source)
                solved = solve(lav_setting, source, target).exists
                assert criterion == solved, (source_text, target_text)


class TestLemma6BlockOrigins:
    """Condition 2.1: every block of I_can is the chase of one J_can block."""

    def test_block_counts_correspond(self, lav_setting):
        source = parse_instance("; ".join(f"S(a{i}, b{i})" for i in range(5)))
        j_can, i_can, _stats = canonical_instances(lav_setting, source, Instance())
        j_blocks = decompose_into_blocks(j_can)
        i_blocks = decompose_into_blocks(i_can)
        # One T-fact (one block) per S-fact; each chases to one I_can block.
        null_j_blocks = [b for b in j_blocks if not b.is_ground()]
        null_i_blocks = [b for b in i_blocks if not b.is_ground()]
        assert len(null_i_blocks) == len(null_j_blocks)

    def test_i_can_block_nulls_trace_to_one_j_block(self, lav_setting):
        source = parse_instance("; ".join(f"S(a{i}, b{i})" for i in range(4)))
        j_can, i_can, _stats = canonical_instances(lav_setting, source, Instance())
        j_blocks = decompose_into_blocks(j_can)
        for i_block in decompose_into_blocks(i_can):
            shared = i_block.nulls & j_can.nulls()
            if not shared:
                continue
            # All shared nulls must come from a single J_can block (Lemma 7).
            owners = {
                index
                for index, j_block in enumerate(j_blocks)
                if shared & j_block.nulls
            }
            assert len(owners) == 1


class TestLemma8NullOriginSeparation:
    """Condition 2.2: each I_can block's nulls come from Σ_st or Σ_ts,
    never both."""

    def test_no_mixed_blocks(self, condition22_setting):
        source = parse_instance("; ".join(f"S(a{i}, b{i})" for i in range(4)))
        j_can, i_can, _stats = canonical_instances(
            condition22_setting, source, Instance()
        )
        st_nulls = j_can.nulls()
        for block in decompose_into_blocks(i_can):
            if block.is_ground():
                continue
            from_st = block.nulls & st_nulls
            from_ts = block.nulls - st_nulls
            assert not (from_st and from_ts), (
                "Lemma 8 violated: block mixes Σ_st nulls "
                f"{from_st} with Σ_ts nulls {from_ts}"
            )

    def test_lav_setting_also_separates(self, lav_setting):
        source = parse_instance("; ".join(f"S(a{i}, b{i})" for i in range(4)))
        j_can, i_can, _stats = canonical_instances(lav_setting, source, Instance())
        st_nulls = j_can.nulls()
        for block in decompose_into_blocks(i_can):
            if block.is_ground():
                continue
            from_st = block.nulls & st_nulls
            from_ts = block.nulls - st_nulls
            # With single-literal bodies the chase may thread a Σ_st null
            # and a fresh Σ_ts null through one tuple, but Theorem 6 still
            # bounds the total per block.
            assert block.null_count <= 2


class TestTheorem6Constant:
    def test_bound_across_sizes_and_settings(self, lav_setting, condition22_setting):
        for setting, bound in ((lav_setting, 2), (condition22_setting, 2)):
            for n in (2, 6, 12):
                source = parse_instance(
                    "; ".join(f"S(a{i}, b{i})" for i in range(n))
                )
                _j_can, i_can, _stats = canonical_instances(
                    setting, source, Instance()
                )
                blocks = decompose_into_blocks(i_can)
                worst = max((b.null_count for b in blocks), default=0)
                assert worst <= bound, (setting.name, n, worst)


class TestMinimalSolutionsRespectDiagram:
    def test_every_minimal_solution_receives_j_can(self, lav_setting):
        source = parse_instance("S(a, b); S(b, c)")
        j_can, _i_can, _stats = canonical_instances(lav_setting, source, Instance())
        for solution in enumerate_solutions(lav_setting, source, Instance(), limit=8):
            assert has_instance_homomorphism(j_can, solution)
