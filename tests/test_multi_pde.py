"""Tests for multi-PDE settings and their reduction to a single PDE
(Section 2, experiment E15)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import MultiPDESetting, PDESetting
from repro.exceptions import DependencyError, SchemaError
from repro.solver import solve


def make_members():
    first = PDESetting.from_text(
        source={"A": 2},
        target={"H": 2},
        st="A(x, y) -> H(x, y)",
        ts="H(x, y) -> A(x, y)",
        name="peer-A",
    )
    second = PDESetting.from_text(
        source={"B": 2},
        target={"H": 2},
        st="B(x, y) -> H(y, x)",
        name="peer-B",
    )
    return first, second


class TestConstruction:
    def test_shared_target_required(self):
        first, _ = make_members()
        other = PDESetting.from_text(source={"B": 2}, target={"G": 2})
        with pytest.raises(SchemaError):
            MultiPDESetting([first, other])

    def test_disjoint_sources_required(self):
        first, _ = make_members()
        clone = PDESetting.from_text(source={"A": 2}, target={"H": 2})
        with pytest.raises(SchemaError):
            MultiPDESetting([first, clone])

    def test_empty_rejected(self):
        with pytest.raises(DependencyError):
            MultiPDESetting([])


class TestMerge:
    def test_merged_schema_is_union(self):
        multi = MultiPDESetting(make_members())
        merged = multi.merge()
        assert set(merged.source_schema.names()) == {"A", "B"}
        assert set(merged.target_schema.names()) == {"H"}

    def test_merged_dependencies_are_concatenated(self):
        multi = MultiPDESetting(make_members())
        merged = multi.merge()
        assert len(merged.sigma_st) == 2
        assert len(merged.sigma_ts) == 1

    def test_solution_space_equivalence(self):
        """The paper's claim: J' solves the multi-PDE iff it solves the
        merged single PDE on the union of the sources."""
        multi = MultiPDESetting(make_members())
        merged = multi.merge()
        source_a = parse_instance("A(a, b)")
        source_b = parse_instance("B(c, d)")
        union = multi.combine_sources([source_a, source_b])

        candidates = [
            parse_instance("H(a, b); H(d, c)"),
            parse_instance("H(a, b)"),
            parse_instance("H(a, b); H(d, c); H(x, y)"),
            Instance(),
        ]
        for candidate in candidates:
            multi_says = multi.is_solution([source_a, source_b], Instance(), candidate)
            merged_says = merged.is_solution(union, Instance(), candidate)
            assert multi_says == merged_says

    def test_solver_on_merged_setting(self):
        # B(b, a) contributes H(a, b), which peer A's Σ_ts accepts because
        # A(a, b) exists.
        multi = MultiPDESetting(make_members())
        merged = multi.merge()
        sources = [parse_instance("A(a, b)"), parse_instance("B(b, a)")]
        union = multi.combine_sources(sources)
        result = solve(merged, union, Instance())
        assert result.exists
        assert multi.is_solution(sources, Instance(), result.solution)

    def test_solver_detects_cross_peer_rejection(self):
        # Peer B's contribution H(d, c) is not vouched for by peer A's
        # source, so the ts-constraint of peer A makes the merged input
        # unsolvable — an interaction only visible after merging.
        multi = MultiPDESetting(make_members())
        merged = multi.merge()
        union = multi.combine_sources(
            [parse_instance("A(a, b)"), parse_instance("B(c, d)")]
        )
        assert not solve(merged, union, Instance()).exists

    def test_wrong_source_count_rejected(self):
        multi = MultiPDESetting(make_members())
        with pytest.raises(DependencyError):
            multi.is_solution([parse_instance("A(a, b)")], Instance(), Instance())


class TestSolveMulti:
    def test_solves_and_verifies(self):
        from repro.solver.multi import solve_multi

        multi = MultiPDESetting(make_members())
        sources = [parse_instance("A(a, b)"), parse_instance("B(b, a)")]
        result = solve_multi(multi, sources, Instance())
        assert result.exists
        assert multi.is_solution(sources, Instance(), result.solution)

    def test_unsolvable_family(self):
        from repro.solver.multi import solve_multi

        multi = MultiPDESetting(make_members())
        sources = [parse_instance("A(a, b)"), parse_instance("B(c, d)")]
        assert not solve_multi(multi, sources, Instance()).exists

    def test_source_count_checked(self):
        from repro.solver.multi import solve_multi

        multi = MultiPDESetting(make_members())
        with pytest.raises(DependencyError):
            solve_multi(multi, [parse_instance("A(a, b)")], Instance())

    def test_node_budget_is_deprecated_but_still_works(self):
        from repro.solver.multi import solve_multi

        multi = MultiPDESetting(make_members())
        sources = [parse_instance("A(a, b)"), parse_instance("B(b, a)")]
        with pytest.warns(DeprecationWarning, match="node_budget"):
            result = solve_multi(multi, sources, Instance(), node_budget=10_000)
        assert result.exists

    def test_bogus_witness_raises_invariant_violation(self, monkeypatch):
        # If the merged-setting solve ever returned a witness that a member
        # setting rejects, the Section 2 equivalence would be violated — a
        # library bug, reported as InvariantViolation rather than a bare
        # AssertionError so callers can catch it under ReproError.
        import repro.solver.multi as multi_module
        from repro.exceptions import InvariantViolation, ReproError, SolverError
        from repro.solver.multi import solve_multi
        from repro.solver.results import SolveResult

        assert issubclass(InvariantViolation, ReproError)
        assert not issubclass(InvariantViolation, SolverError)

        bogus = parse_instance("H(x, x); H(y, y)")
        monkeypatch.setattr(
            multi_module,
            "solve",
            lambda *args, **kwargs: SolveResult(exists=True, solution=bogus),
        )
        multi = MultiPDESetting(make_members())
        sources = [parse_instance("A(a, b)"), parse_instance("B(b, a)")]
        with pytest.raises(InvariantViolation, match="Section 2 equivalence"):
            solve_multi(multi, sources, Instance())
