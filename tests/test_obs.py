"""Tests for the observability layer: tracer, metrics, exporters, hooks."""

import json
import time

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.setting import PDESetting
from repro.exceptions import TraceError
from repro.obs import (
    DEFAULT_DURATION_BUCKETS_MS,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA_VERSION,
    Tracer,
    aggregate_spans,
    chrome_trace,
    read_trace_jsonl,
    render_span_tree,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.runtime import Budget, RetryPolicy, SolveStatus
from repro.solver import certain_answers, solve
from repro.sync import SyncSession


@pytest.fixture
def example_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
        name="composition",
    )


@pytest.fixture
def np_workload():
    """An unsatisfiable valuation-search workload (triangle-free cycle)."""
    from repro.reductions.clique import clique_setting, clique_source_instance
    from repro.workloads import cycle_graph

    nodes, edges = cycle_graph(4)
    source = clique_source_instance(nodes, edges, k=3)
    return clique_setting(), source, Instance()


class FakeClock:
    """Deterministic clock for span-duration assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestTracer:
    def test_nesting_and_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", kind="demo") as outer:
            clock.tick(1.0)
            with tracer.span("inner"):
                clock.tick(2.0)
            clock.tick(0.5)
            outer.set("done", True)
        assert [root.name for root in tracer.roots] == ["outer"]
        assert outer.attributes == {"kind": "demo", "done": True}
        assert outer.duration == pytest.approx(3.5)
        assert outer.self_duration == pytest.approx(1.5)
        inner = outer.children[0]
        assert inner.name == "inner"
        assert inner.duration == pytest.approx(2.0)

    def test_counters_events_and_orphans(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("early")  # outside any span
        with tracer.span("work") as span:
            tracer.add("units", 3)
            tracer.add("units", 2)
            tracer.event("milestone", at_step=5)
            tracer.annotate(phase="late")
        assert span.counters == {"units": 5}
        assert span.attributes["phase"] == "late"
        assert [event["name"] for event in span.events] == ["milestone"]
        assert [event["name"] for event in tracer.orphan_events] == ["early"]

    def test_exception_marks_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        assert tracer.roots[0].attributes["error"] == "ValueError"
        assert tracer.current is None  # stack unwound

    def test_walk_find_total(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a") as a:
            with tracer.span("b"):
                tracer.add("n", 1)
            with tracer.span("b"):
                tracer.add("n", 2)
        assert [span.name for _d, span in a.walk()] == ["a", "b", "b"]
        assert a.find("b") is a.children[0]
        assert a.total("n") == 3
        assert tracer.find("missing") is None

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            span.set("ignored", 1)
            span.add("ignored", 1)
            tracer.event("ignored")
            tracer.add("ignored")
            tracer.annotate(ignored=True)
        assert not tracer.enabled
        assert tracer.roots == []
        assert tracer.orphan_events == []
        assert tracer.current is None
        assert list(tracer.spans()) == []
        # The shared singleton stayed clean too.
        assert NULL_TRACER.roots == []

    def test_noop_span_overhead_is_trivial(self):
        # The no-op path must not allocate, time, or record: entering a
        # quarter-million null spans should take well under a second even
        # on a loaded CI machine (a real Tracer doing real work would not).
        started = time.perf_counter()
        for _ in range(250_000):
            with NULL_TRACER.span("hot"):
                pass
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, f"no-op span path took {elapsed:.2f}s"


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc()
        registry.counter("steps").inc(4)
        registry.gauge("depth").set(7)
        histogram = registry.histogram("latency_ms")
        for value in (0.5, 3.0, 700.0, 99999.0):
            histogram.observe(value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["steps"] == 5
        assert snapshot["gauges"]["depth"] == 7
        assert snapshot["histograms"]["latency_ms"]["count"] == 4
        assert snapshot["histograms"]["latency_ms"]["sum"] == pytest.approx(100702.5)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_absorb_and_summary(self):
        registry = MetricsRegistry()
        registry.absorb({"nodes": 12, "exists": True, "method": "tractable"},
                        prefix="solve.")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["solve.nodes"] == 12
        assert snapshot["gauges"]["solve.exists"] == 1
        assert snapshot["labels"]["solve.method"] == "tractable"
        summary = registry.summary()
        assert "solve.nodes = 12" in summary

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_DURATION_BUCKETS_MS) == sorted(DEFAULT_DURATION_BUCKETS_MS)


class TestJsonlRoundTrip:
    def _record_solve(self, setting, source) -> Tracer:
        tracer = Tracer()
        result = solve(setting, source, Instance(), tracer=tracer)
        assert result.decided
        return tracer

    def test_write_read_render(self, tmp_path, example_setting):
        tracer = self._record_solve(
            example_setting, parse_instance("E(a, b); E(b, c); E(a, c)")
        )
        path = tmp_path / "trace.jsonl"
        written = write_trace_jsonl(tracer, path)
        assert written == sum(1 for _ in tracer.spans())

        # Every line is standalone JSON; the first is the versioned header.
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "type": "header", "version": TRACE_SCHEMA_VERSION,
            "format": "repro-trace",
        }

        roots = read_trace_jsonl(path)
        assert [root.name for root in roots] == [r.name for r in tracer.roots]
        original = [(d, s.name, s.counters) for root in tracer.roots
                    for d, s in root.walk()]
        recovered = [(d, s.name, s.counters) for root in roots
                     for d, s in root.walk()]
        assert recovered == original

        # The reread forest renders the same tree shape as the live one.
        rendered = render_span_tree(roots)
        assert [line.split()[0] for line in rendered.splitlines()] == [
            line.split()[0] for line in render_span_tree(tracer).splitlines()
        ]
        assert "solve" in rendered

    def test_trace_names_solver_and_chase_fires(self, tmp_path, example_setting):
        tracer = self._record_solve(
            example_setting, parse_instance("E(a, b); E(b, c); E(a, c)")
        )
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(tracer, path)
        roots = read_trace_jsonl(path)
        solve_span = roots[0].find("solve")
        assert solve_span.attributes["dispatched"] == "tractable"
        chase_span = roots[0].find("chase")
        fires = chase_span.attributes["fires"]
        assert fires and all(count >= 1 for count in fires.values())
        assert any("->" in rendered for rendered in fires)

    def test_torn_final_line_is_dropped(self, tmp_path, example_setting):
        tracer = self._record_solve(
            example_setting, parse_instance("E(a, b); E(b, c); E(a, c)")
        )
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(tracer, path)
        text = path.read_text()
        torn = text.rstrip("\n")
        path.write_text(torn[: len(torn) - 20])  # crash mid-record
        roots = read_trace_jsonl(path)
        assert sum(1 for root in roots for _ in root.walk()) \
            == sum(1 for _ in tracer.spans()) - 1

    def test_interior_corruption_raises(self, tmp_path, example_setting):
        tracer = self._record_solve(
            example_setting, parse_instance("E(a, b); E(b, c); E(a, c)")
        )
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a committed interior record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            read_trace_jsonl(path)

    def test_header_validation(self, tmp_path):
        missing = tmp_path / "missing.jsonl"
        with pytest.raises(TraceError):
            read_trace_jsonl(missing)

        no_header = tmp_path / "no_header.jsonl"
        no_header.write_text('{"type": "span", "id": 0, "parent": null}\n')
        with pytest.raises(TraceError):
            read_trace_jsonl(no_header)

        bad_version = tmp_path / "bad_version.jsonl"
        bad_version.write_text(
            '{"type": "header", "format": "repro-trace", "version": 999}\n'
        )
        with pytest.raises(TraceError):
            read_trace_jsonl(bad_version)


class TestChromeTrace:
    def test_valid_trace_event_document(self, tmp_path, example_setting):
        tracer = Tracer()
        solve(example_setting,
              parse_instance("E(a, b); E(b, c); E(a, c)"), Instance(),
              tracer=tracer)
        document = chrome_trace(tracer)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} >= {"solve", "chase"}
        for event in events:
            assert event["ts"] >= 0.0
            json.dumps(event)  # every record is JSON-serializable
        assert min(e["ts"] for e in events) == 0.0  # origin-relative

        path = tmp_path / "chrome.json"
        write_chrome_trace(tracer, path)
        assert json.loads(path.read_text())["traceEvents"]


class TestAggregation:
    def test_aggregate_spans_self_time(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.tick(1.0)
            with tracer.span("leaf"):
                clock.tick(3.0)
            with tracer.span("leaf"):
                clock.tick(2.0)
        entries = {entry["name"]: entry for entry in aggregate_spans(tracer)}
        assert entries["leaf"]["count"] == 2
        assert entries["leaf"]["total_s"] == pytest.approx(5.0)
        assert entries["outer"]["self_s"] == pytest.approx(1.0)
        assert aggregate_spans(tracer, top=1)[0]["name"] == "leaf"


class TestSolverInstrumentation:
    def test_solve_span_tree_tractable(self, example_setting):
        tracer = Tracer()
        result = solve(example_setting,
                       parse_instance("E(a, b); E(b, c); E(a, c)"),
                       Instance(), tracer=tracer)
        assert result.exists
        solve_span = tracer.find("solve")
        assert solve_span.attributes["dispatched"] == "tractable"
        assert solve_span.attributes["exists"] is True
        assert [e["name"] for e in solve_span.events] == ["dispatch"]
        tractable_span = solve_span.find("tractable")
        assert tractable_span.counters["hom_tests"] >= 1
        assert tractable_span.attributes["blocks"] >= 1

    def test_solve_span_tree_np(self, np_workload):
        setting, source, target = np_workload
        tracer = Tracer()
        result = solve(setting, source, target, tracer=tracer)
        assert not result.exists
        search_span = tracer.find("valuation-search")
        assert search_span.counters["nodes"] > 0
        assert search_span.counters["backtracks"] > 0
        assert search_span.attributes["exists"] is False

    def test_solve_metrics_attachment(self, example_setting):
        registry = MetricsRegistry()
        result = solve(example_setting,
                       parse_instance("E(a, b); E(b, c); E(a, c)"),
                       Instance(), metrics=registry)
        assert result.metrics is registry
        snapshot = registry.snapshot()
        assert snapshot["labels"]["solve.solver"] == "tractable"
        assert snapshot["histograms"]["solve.duration_ms"]["count"] == 1

    def test_untraced_result_has_no_metrics(self, example_setting):
        result = solve(example_setting,
                       parse_instance("E(a, b); E(b, c); E(a, c)"), Instance())
        assert result.metrics is None

    def test_budget_snapshot_on_success(self, example_setting, np_workload):
        # Successful results now carry the final budget snapshot too, not
        # just degraded ones — on both the tractable and the NP path.
        result = solve(example_setting,
                       parse_instance("E(a, b); E(b, c); E(a, c)"), Instance())
        assert result.exists
        assert result.stats["budget_chase_steps"] > 0
        setting, source, target = np_workload
        result = solve(setting, source, target)
        assert result.decided
        assert result.stats["budget_nodes"] > 0

    def test_certain_answers_trace_and_metrics(self, example_setting):
        tracer = Tracer()
        registry = MetricsRegistry()
        result = certain_answers(
            example_setting, parse_query("q(x, y) :- H(x, y)"),
            parse_instance("E(a, b); E(b, c); E(a, c)"), Instance(),
            tracer=tracer, metrics=registry,
        )
        assert result.decided
        span = tracer.find("certain-answers")
        assert span.attributes["certain"] == len(result.answers)
        assert result.metrics is registry
        assert registry.snapshot()["counters"]["certain.answers"] \
            == len(result.answers)

    def test_explain_exhausted_search_reports_metrics(self, np_workload):
        from repro.solver.explain import explain

        setting, source, target = np_workload
        explanation = explain(setting, source, target)
        assert not explanation.exists
        assert explanation.reason == "exhausted-search"
        assert explanation.details["metrics"]["counters"]["solve.nodes"] > 0
        assert "search nodes explored" in explanation.narrative


class TestSyncInstrumentation:
    @pytest.fixture
    def registry_setting(self) -> PDESetting:
        return PDESetting.from_text(
            source={"reg": 2},
            target={"db": 2},
            st="reg(k, v) -> db(k, v)",
            ts="db(k, v) -> reg(k, v)",
            name="registry",
        )

    def test_sync_round_spans(self, registry_setting):
        tracer = Tracer()
        registry = MetricsRegistry()
        session = SyncSession(registry_setting)
        outcome = session.sync(parse_instance("reg(a, 1); reg(b, 2)"),
                               tracer=tracer, metrics=registry)
        assert outcome.ok
        round_span = tracer.find("sync-round")
        assert round_span.attributes["round"] == 1
        assert round_span.attributes["ok"] is True
        assert round_span.counters["added"] == 2
        names = [span.name for _d, span in round_span.walk()]
        assert "retraction-scan" in names
        assert "solve-attempt" in names
        assert "solve" in names  # the solver trace nests under the attempt
        assert outcome.metrics is registry
        assert registry.snapshot()["counters"]["sync.added"] == 2

    def test_retry_events_recorded(self, registry_setting):
        # First attempt exhausts a one-chase-step budget; escalation (4x)
        # lets the retry succeed.  The trace must show both attempts and a
        # retry event, and the metrics must count the retry.
        tracer = Tracer()
        registry = MetricsRegistry()
        sleeps: list[float] = []
        session = SyncSession(
            registry_setting,
            retry=RetryPolicy(max_attempts=3, jitter=0.0,
                              sleep=sleeps.append),
        )
        outcome = session.sync(
            parse_instance("reg(a, 1); reg(b, 2); reg(c, 3)"),
            budget=Budget(chase_step_cap=1),
            tracer=tracer, metrics=registry,
        )
        assert outcome.ok
        assert outcome.attempts >= 2
        round_span = tracer.find("sync-round")
        attempts = [span for _d, span in round_span.walk()
                    if span.name == "solve-attempt"]
        assert len(attempts) == outcome.attempts
        retries = [e for e in round_span.events if e["name"] == "retry"]
        assert len(retries) == outcome.attempts - 1
        assert retries[0]["attributes"]["status"] \
            == SolveStatus.BUDGET_EXHAUSTED.value
        assert registry.snapshot()["counters"]["sync.retries"] \
            == outcome.attempts - 1
        assert sleeps  # the policy's backoff path ran

    def test_journal_commit_event(self, registry_setting, tmp_path):
        from repro.runtime import SessionJournal

        tracer = Tracer()
        session = SyncSession(
            registry_setting, journal=SessionJournal(tmp_path / "sync.jsonl")
        )
        assert session.sync(parse_instance("reg(a, 1)"), tracer=tracer).ok
        round_span = tracer.find("sync-round")
        commits = [e for e in round_span.events if e["name"] == "journal-commit"]
        assert len(commits) == 1
        assert commits[0]["attributes"]["round"] == 1


class TestReportIntegration:
    def test_describe_setting_with_tracer(self, example_setting):
        from repro.report import describe_setting

        tracer = Tracer()
        solve(example_setting, parse_instance("E(a, b); E(b, c); E(a, c)"),
              Instance(), tracer=tracer)
        report = describe_setting(example_setting, trace=tracer)
        assert "## Last run" in report
        assert "dispatched solver: **tractable**" in report
        assert "### Span tree" in report
        assert "### Aggregated spans" in report

    def test_describe_setting_with_trace_file(self, example_setting, tmp_path):
        from repro.report import describe_setting

        tracer = Tracer()
        solve(example_setting, parse_instance("E(a, b); E(b, c); E(a, c)"),
              Instance(), tracer=tracer)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(tracer, path)
        report = describe_setting(example_setting, trace=str(path))
        assert "## Last run" in report
        assert "dispatched solver: **tractable**" in report

    def test_describe_setting_without_trace_unchanged(self, example_setting):
        from repro.report import describe_setting

        report = describe_setting(example_setting)
        assert "## Last run" not in report
