"""Unit tests for atoms and facts."""

import pytest

from repro.core.atoms import Atom, Fact
from repro.core.terms import Constant, Null, Variable


class TestAtom:
    def test_arity(self):
        atom = Atom("R", [Variable("x"), Constant("a")])
        assert atom.arity == 2

    def test_variables(self):
        atom = Atom("R", [Variable("x"), Constant("a"), Variable("x"), Variable("y")])
        assert atom.variables() == {Variable("x"), Variable("y")}

    def test_constants(self):
        atom = Atom("R", [Variable("x"), Constant("a")])
        assert atom.constants() == {Constant("a")}

    def test_nulls(self):
        atom = Atom("R", [Null(1), Constant("a")])
        assert atom.nulls() == {Null(1)}

    def test_positions_of(self):
        x = Variable("x")
        atom = Atom("R", [x, Constant("a"), x])
        assert atom.positions_of(x) == [0, 2]

    def test_substitute(self):
        atom = Atom("R", [Variable("x"), Variable("y")])
        image = atom.substitute({Variable("x"): Constant("a")})
        assert image == Atom("R", [Constant("a"), Variable("y")])

    def test_substitute_leaves_original_unchanged(self):
        atom = Atom("R", [Variable("x")])
        atom.substitute({Variable("x"): Constant("a")})
        assert atom.args == (Variable("x"),)

    def test_is_ground(self):
        assert Atom("R", [Constant("a"), Null(0)]).is_ground()
        assert not Atom("R", [Variable("x")]).is_ground()

    def test_to_fact_on_ground_atom(self):
        fact = Atom("R", [Constant("a")]).to_fact()
        assert isinstance(fact, Fact)
        assert fact.args == (Constant("a"),)

    def test_to_fact_rejects_variables(self):
        with pytest.raises(ValueError):
            Atom("R", [Variable("x")]).to_fact()

    def test_equality_and_hash(self):
        first = Atom("R", [Variable("x")])
        second = Atom("R", (Variable("x"),))
        assert first == second
        assert hash(first) == hash(second)

    def test_str(self):
        assert str(Atom("R", [Variable("x"), Constant("a")])) == "R(x, a)"

    def test_zero_arity(self):
        atom = Atom("Flag", [])
        assert atom.arity == 0
        assert atom.is_ground()


class TestFact:
    def test_nulls_and_constants(self):
        fact = Fact("R", [Constant("a"), Null(2)])
        assert fact.nulls() == {Null(2)}
        assert fact.constants() == {Constant("a")}

    def test_is_ground(self):
        assert Fact("R", [Constant("a")]).is_ground()
        assert not Fact("R", [Null(0)]).is_ground()

    def test_substitute_renames_nulls(self):
        fact = Fact("R", [Null(0), Constant("a")])
        renamed = fact.substitute({Null(0): Constant("b")})
        assert renamed == Fact("R", [Constant("b"), Constant("a")])

    def test_to_atom_roundtrip(self):
        fact = Fact("R", [Constant("a"), Null(1)])
        assert fact.to_atom().to_fact() == fact

    def test_hashable(self):
        assert len({Fact("R", [Constant("a")]), Fact("R", (Constant("a"),))}) == 1
