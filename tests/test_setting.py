"""Unit tests for PDE settings (Definitions 1-2)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.core.schema import Schema
from repro.exceptions import DependencyError, SchemaError


class TestConstruction:
    def test_from_text(self, example1_setting):
        assert len(example1_setting.sigma_st) == 1
        assert len(example1_setting.sigma_ts) == 1
        assert not example1_setting.has_target_constraints

    def test_disjoint_schemas_required(self):
        with pytest.raises(SchemaError):
            PDESetting.from_text(source={"E": 2}, target={"E": 2})

    def test_st_atoms_validated(self):
        with pytest.raises(SchemaError):
            PDESetting.from_text(
                source={"E": 2},
                target={"H": 2},
                st="H(x, y) -> E(x, y)",  # sides swapped
            )

    def test_ts_atoms_validated(self):
        with pytest.raises(SchemaError):
            PDESetting.from_text(
                source={"E": 2},
                target={"H": 2},
                ts="E(x, y) -> H(x, y)",  # sides swapped
            )

    def test_t_atoms_validated(self):
        with pytest.raises(SchemaError):
            PDESetting.from_text(
                source={"E": 2},
                target={"H": 2},
                t="E(x, y) -> H(x, y)",  # E is a source relation
            )

    def test_egd_rejected_in_st(self):
        with pytest.raises(DependencyError):
            PDESetting.from_text(
                source={"E": 2},
                target={"H": 2},
                st="E(x, y), E(x, y2) -> y = y2",
            )

    def test_egd_allowed_in_t(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            t="H(x, y), H(x, y2) -> y = y2",
        )
        assert len(setting.target_egds()) == 1

    def test_disjunctive_allowed_in_ts_only(self):
        setting = PDESetting.from_text(
            source={"E": 2, "R": 1, "B": 1},
            target={"H": 2},
            ts="H(x, y) -> (R(x)) | (B(x))",
        )
        assert setting.has_disjunctive_ts
        with pytest.raises(DependencyError):
            PDESetting.from_text(
                source={"E": 2},
                target={"H": 2, "R1": 1, "B1": 1},
                st="E(x, y) -> (R1(x)) | (B1(x))",
            )


class TestStructure:
    def test_combined_schema(self, example1_setting):
        assert set(example1_setting.combined_schema.names()) == {"E", "H"}

    def test_combine_and_split(self, example1_setting):
        source = parse_instance("E(a, b)")
        target = parse_instance("H(a, b)")
        combined = example1_setting.combine(source, target)
        assert len(combined) == 2
        back_source, back_target = example1_setting.split(combined)
        assert back_source == source
        assert back_target == target

    def test_target_tgds_weakly_acyclic(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            t="H(x, y) -> H(x, z)",
        )
        assert setting.target_tgds_weakly_acyclic()
        bad = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            t="H(x, y) -> H(y, z)",
        )
        assert not bad.target_tgds_weakly_acyclic()

    def test_all_dependencies_order(self, example1_setting):
        deps = example1_setting.all_dependencies()
        assert len(deps) == 2

    def test_validate_instances(self, example1_setting):
        example1_setting.validate_source_instance(parse_instance("E(a, b)"))
        example1_setting.validate_target_instance(parse_instance("H(a, b)"))
        with pytest.raises(SchemaError):
            example1_setting.validate_source_instance(parse_instance("H(a, b)"))
        with pytest.raises(SchemaError):
            example1_setting.validate_target_instance(parse_instance("E(a, b)"))


class TestIsSolution:
    def test_example1_valid_solution(self, example1_setting, triangle_ish_source):
        solution = parse_instance("H(a, c)")
        assert example1_setting.is_solution(triangle_ish_source, Instance(), solution)

    def test_example1_other_solution(self, example1_setting, triangle_ish_source):
        solution = parse_instance("H(a, b); H(b, c); H(a, c)")
        assert example1_setting.is_solution(triangle_ish_source, Instance(), solution)

    def test_candidate_must_contain_target(self, example1_setting, triangle_ish_source):
        target = parse_instance("H(a, c)")
        # The empty candidate does not contain J.
        assert not example1_setting.is_solution(triangle_ish_source, target, Instance())

    def test_sigma_st_violation_detected(self, example1_setting, triangle_ish_source):
        # Missing the required H(a, c) for the path a->b->c.
        assert not example1_setting.is_solution(
            triangle_ish_source, Instance(), parse_instance("H(a, b)")
        )

    def test_sigma_ts_violation_detected(self, example1_setting, triangle_ish_source):
        # H(c, a) has no E(c, a) backing it.
        candidate = parse_instance("H(a, c); H(c, a)")
        assert not example1_setting.is_solution(triangle_ish_source, Instance(), candidate)

    def test_sigma_t_checked(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
            t="H(x, y), H(x, y2) -> y = y2",
        )
        source = parse_instance("E(a, b); E(a, c)")
        candidate = parse_instance("H(a, b); H(a, c)")
        assert not setting.is_solution(source, Instance(), candidate)
