"""Experiment E4: the CLIQUE reduction of Theorem 3."""

import itertools

import pytest

from repro.core.instance import Instance
from repro.core.dependency_graph import is_acyclic, relation_dependency_graph
from repro.reductions import (
    certain_answer_query,
    clique_setting,
    clique_source_instance,
    has_k_clique,
    normalize_graph,
)
from repro.solver import certain_answers, solve
from repro.tractability import classify


TRIANGLE = ([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
PATH4 = ([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)])
K4 = (list(range(4)), list(itertools.combinations(range(4), 2)))


class TestReductionCorrectness:
    @pytest.mark.parametrize(
        "graph,k,expected",
        [
            (TRIANGLE, 3, True),
            (TRIANGLE, 2, True),
            (PATH4, 3, False),
            (PATH4, 2, True),
            (K4, 4, True),
            (K4, 3, True),
            (([1, 2], []), 2, False),
        ],
    )
    def test_solution_iff_clique(self, graph, k, expected):
        nodes, edges = graph
        assert has_k_clique(nodes, edges, k) is expected
        source = clique_source_instance(nodes, edges, k)
        assert solve(clique_setting(), source, Instance()).exists is expected

    def test_exhaustive_small_graphs(self):
        """Every graph on 3 nodes, k in {2, 3}."""
        setting = clique_setting()
        nodes = [1, 2, 3]
        all_edges = list(itertools.combinations(nodes, 2))
        for r in range(len(all_edges) + 1):
            for chosen in itertools.combinations(all_edges, r):
                for k in (2, 3):
                    want = has_k_clique(nodes, chosen, k)
                    source = clique_source_instance(nodes, chosen, k)
                    got = solve(setting, source, Instance()).exists
                    assert got == want, (chosen, k)

    def test_witness_is_valid(self):
        setting = clique_setting()
        nodes, edges = TRIANGLE
        source = clique_source_instance(nodes, edges, 3)
        result = solve(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)

    def test_k_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            clique_source_instance([1], [], 1)


class TestSettingShape:
    def test_not_in_ctract_but_conditions_analyzed(self):
        report = classify(clique_setting())
        assert not report.in_ctract
        assert report.condition1  # marked variables appear once per lhs

    def test_acyclic_relation_dependency_graph(self):
        """Section 3.2: the reduction setting's dependency graph is acyclic,
        so acyclicity alone cannot ensure tractability."""
        graph = relation_dependency_graph(clique_setting().all_dependencies())
        assert is_acyclic(graph)

    def test_no_target_constraints(self):
        assert not clique_setting().has_target_constraints


class TestCertainAnswersVariant:
    def test_query_not_certain_iff_clique(self):
        setting = clique_setting()
        query = certain_answer_query()
        for (nodes, edges), k, has_clique in [
            (TRIANGLE, 3, True),
            (PATH4, 3, False),
            (PATH4, 2, True),
        ]:
            source = clique_source_instance(nodes, edges, k, draw_from_nodes=True)
            result = certain_answers(setting, query, source, Instance())
            # G has a k-clique iff certain(q) = false.
            assert result.boolean_value is (not has_clique), (nodes, edges, k)

    def test_padding_when_k_exceeds_nodes(self):
        setting = clique_setting()
        query = certain_answer_query()
        source = clique_source_instance([1, 2], [(1, 2)], 3, draw_from_nodes=True)
        result = certain_answers(setting, query, source, Instance())
        # No 3-clique in a 2-node graph: certain(q) = true (vacuously,
        # since no solution exists).
        assert result.boolean_value is True
        assert not result.solutions_exist


class TestNormalizeGraph:
    def test_symmetrizes(self):
        _nodes, edges = normalize_graph([1, 2], [(1, 2)])
        assert (2, 1) in edges

    def test_drops_self_loops(self):
        _nodes, edges = normalize_graph([1], [(1, 1)])
        assert edges == set()

    def test_collects_nodes_from_edges(self):
        nodes, _edges = normalize_graph([], [(1, 2)])
        assert set(nodes) == {1, 2}
