"""Property-based tests for the solvers (hypothesis).

Small random instances over fixed settings: the independent solver
implementations must agree with each other and with direct verification of
Definition 2 on their witnesses.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import Fact
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.core.terms import Constant
from repro.solver import solve
from repro.solver.certain_answers import is_certain
from repro.core.parser import parse_query

EXAMPLE1 = PDESetting.from_text(
    source={"E": 2},
    target={"H": 2},
    st="E(x, z), E(z, y) -> H(x, y)",
    ts="H(x, y) -> E(x, y)",
)

CHOICE = PDESetting.from_text(
    source={"A": 1, "R": 2},
    target={"T": 2},
    st="A(x) -> T(x, y)",
    ts="T(x, y) -> R(x, y)",
)

KEYED = PDESetting.from_text(
    source={"A": 1, "R": 2},
    target={"T": 2},
    st="A(x) -> T(x, y)",
    ts="T(x, y) -> R(x, y)",
    t="T(x, y), T(x, y2) -> y = y2",
)

values = st.sampled_from([Constant("a"), Constant("b"), Constant("c")])

e_instances = st.lists(
    st.builds(lambda u, v: Fact("E", (u, v)), values, values), max_size=6
).map(Instance)

ar_instances = st.builds(
    lambda a_facts, r_facts: Instance(a_facts + r_facts),
    st.lists(st.builds(lambda u: Fact("A", (u,)), values), max_size=3),
    st.lists(st.builds(lambda u, v: Fact("R", (u, v)), values, values), max_size=4),
)

SOLVER_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestSolverAgreement:
    @SOLVER_SETTINGS
    @given(e_instances)
    def test_example1_tractable_vs_valuation(self, source):
        tractable = solve(EXAMPLE1, source, Instance(), method="tractable").exists
        valuation = solve(EXAMPLE1, source, Instance(), method="valuation").exists
        assert tractable == valuation

    @SOLVER_SETTINGS
    @given(e_instances)
    def test_example1_valuation_vs_branching(self, source):
        valuation = solve(EXAMPLE1, source, Instance(), method="valuation").exists
        branching = solve(EXAMPLE1, source, Instance(), method="branching").exists
        assert valuation == branching

    @SOLVER_SETTINGS
    @given(ar_instances)
    def test_choice_setting_valuation_vs_branching(self, source):
        valuation = solve(CHOICE, source, Instance(), method="valuation").exists
        branching = solve(CHOICE, source, Instance(), method="branching").exists
        assert valuation == branching

    @SOLVER_SETTINGS
    @given(ar_instances)
    def test_keyed_setting_valuation_vs_branching(self, source):
        valuation = solve(KEYED, source, Instance(), method="valuation").exists
        branching = solve(KEYED, source, Instance(), method="branching").exists
        assert valuation == branching


class TestWitnessValidity:
    @SOLVER_SETTINGS
    @given(e_instances)
    def test_example1_witness_satisfies_definition2(self, source):
        result = solve(EXAMPLE1, source, Instance())
        if result.exists:
            assert EXAMPLE1.is_solution(source, Instance(), result.solution)

    @SOLVER_SETTINGS
    @given(ar_instances)
    def test_keyed_witness_satisfies_definition2(self, source):
        result = solve(KEYED, source, Instance())
        if result.exists:
            assert KEYED.is_solution(source, Instance(), result.solution)


class TestCertainAnswerInvariants:
    @SOLVER_SETTINGS
    @given(ar_instances)
    def test_certain_implies_in_witness(self, source):
        """A certain answer appears in every solution, in particular in the
        solver's witness."""
        query = parse_query("q(x, y) :- T(x, y)")
        result = solve(CHOICE, source, Instance())
        if not result.exists:
            return
        witness_answers = query.answers(result.solution)
        for row in witness_answers:
            if is_certain(CHOICE, query, source, Instance(), row):
                assert row in witness_answers

    @SOLVER_SETTINGS
    @given(ar_instances)
    def test_vacuous_certainty_iff_unsolvable(self, source):
        query = parse_query("T(x, y)")
        solvable = solve(CHOICE, source, Instance()).exists
        if not solvable:
            assert is_certain(CHOICE, query, source, Instance())
