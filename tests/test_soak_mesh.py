"""The soak sweep's seeded random-mesh generator: deterministic, survivable.

``scripts/soak.py`` grows a random relay topology and timeline per seed;
these tests pin the generator's contract — same seed, same scenario;
every peer reachable; every fault healed; round-trippable through the
scenario JSON codec — and run a couple of seeds through the simulator,
since a generator that emits unconvergeable scenarios would turn every
nightly soak red with non-bugs.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

from repro.analysis import analyze_scenario
from repro.net import NetworkSimulator, dumps_scenario, loads_scenario

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "soak.py"


def _load_soak():
    spec = importlib.util.spec_from_file_location("soak", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


soak = _load_soak()


def test_generator_is_deterministic():
    first = dumps_scenario(soak.random_mesh_scenario(seed=12))
    second = dumps_scenario(soak.random_mesh_scenario(seed=12))
    assert first == second
    assert first != dumps_scenario(soak.random_mesh_scenario(seed=13))


def test_generated_scenarios_round_trip():
    for seed in range(8):
        scenario = soak.random_mesh_scenario(seed=seed)
        restored = loads_scenario(dumps_scenario(scenario))
        assert restored.topology == scenario.topology
        assert restored.events == tuple(scenario.events) or list(
            restored.events
        ) == list(scenario.events)


def test_generated_scenarios_are_survivable():
    # The generator's contract: no custody gaps, no unhealed partition,
    # no unrestarted crash — so no lint *errors* and no excluded peers.
    for seed in range(16):
        scenario = soak.random_mesh_scenario(seed=seed)
        assert scenario.topology, seed
        report = analyze_scenario(scenario, deltas=True)
        assert not report.errors(), (seed, [d.code for d in report.diagnostics])
        assert not any(
            d.code in ("PDE301", "PDE302", "PDE310") for d in report.diagnostics
        ), (seed, [d.code for d in report.diagnostics])


def test_generated_scenarios_converge_in_the_simulator():
    for seed in (2, 9):
        for deltas in (False, True):
            report = NetworkSimulator(
                soak.random_mesh_scenario(seed=seed), deltas=deltas
            ).run()
            assert report.converged, (seed, deltas)
