"""Unit tests for instances."""

import pytest

from repro.core.atoms import Fact
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.terms import Constant, Null
from repro.exceptions import SchemaError


def fact(relation: str, *values) -> Fact:
    return Fact(
        relation,
        [v if isinstance(v, (Constant, Null)) else Constant(v) for v in values],
    )


class TestConstruction:
    def test_from_tuples(self):
        instance = Instance.from_tuples({"E": [("a", "b"), ("b", "c")]})
        assert len(instance) == 2
        assert fact("E", "a", "b") in instance

    def test_from_tuples_with_nulls(self):
        instance = Instance.from_tuples({"E": [("a", Null(0))]})
        assert instance.nulls() == {Null(0)}

    def test_duplicate_facts_collapse(self):
        instance = Instance.from_tuples({"E": [("a", "b"), ("a", "b")]})
        assert len(instance) == 1

    def test_copy_is_independent(self):
        original = Instance.from_tuples({"E": [("a", "b")]})
        clone = original.copy()
        clone.add(fact("E", "x", "y"))
        assert len(original) == 1
        assert len(clone) == 2

    def test_schema_validation_on_add(self):
        schema = Schema.from_arities({"E": 2})
        instance = Instance(schema=schema)
        with pytest.raises(SchemaError):
            instance.add(fact("E", "a"))
        with pytest.raises(SchemaError):
            instance.add(fact("F", "a", "b"))


class TestMutation:
    def test_add_returns_newness(self):
        instance = Instance()
        assert instance.add(fact("E", "a", "b")) is True
        assert instance.add(fact("E", "a", "b")) is False

    def test_discard(self):
        instance = Instance.from_tuples({"E": [("a", "b")]})
        assert instance.discard(fact("E", "a", "b")) is True
        assert instance.discard(fact("E", "a", "b")) is False
        assert len(instance) == 0

    def test_add_all_counts_new(self):
        instance = Instance.from_tuples({"E": [("a", "b")]})
        added = instance.add_all([fact("E", "a", "b"), fact("E", "b", "c")])
        assert added == 1

    def test_rename_merges_values(self):
        instance = Instance.from_tuples({"E": [(Null(0), "b"), (Null(1), "b")]})
        renamed = instance.rename({Null(0): Null(1)})
        assert len(renamed) == 1
        assert renamed.nulls() == {Null(1)}

    def test_rename_to_constant(self):
        instance = Instance.from_tuples({"E": [(Null(0), "b")]})
        renamed = instance.rename({Null(0): Constant("a")})
        assert fact("E", "a", "b") in renamed
        assert renamed.is_ground()


class TestQueries:
    def test_len_and_bool(self):
        assert not Instance()
        assert Instance.from_tuples({"E": [("a", "b")]})

    def test_relations_lists_only_nonempty(self):
        instance = Instance.from_tuples({"E": [("a", "b")]})
        instance.discard(fact("E", "a", "b"))
        assert instance.relations() == []

    def test_tuples(self):
        instance = Instance.from_tuples({"E": [("a", "b")]})
        assert instance.tuples("E") == frozenset({(Constant("a"), Constant("b"))})
        assert instance.tuples("missing") == frozenset()

    def test_count(self):
        instance = Instance.from_tuples({"E": [("a", "b"), ("b", "c")]})
        assert instance.count("E") == 2
        assert instance.count("F") == 0

    def test_contains_instance(self):
        big = Instance.from_tuples({"E": [("a", "b"), ("b", "c")]})
        small = Instance.from_tuples({"E": [("a", "b")]})
        assert big.contains_instance(small)
        assert not small.contains_instance(big)
        assert big.contains_instance(Instance())

    def test_union(self):
        first = Instance.from_tuples({"E": [("a", "b")]})
        second = Instance.from_tuples({"F": [("c",)]})
        union = first.union(second)
        assert len(union) == 2
        assert len(first) == 1

    def test_equality_ignores_empty_relations(self):
        first = Instance.from_tuples({"E": [("a", "b")]})
        second = Instance.from_tuples({"E": [("a", "b")], "F": []})
        assert first == second

    def test_hash_equal_for_equal_instances(self):
        first = Instance.from_tuples({"E": [("a", "b"), ("b", "c")]})
        second = Instance.from_tuples({"E": [("b", "c"), ("a", "b")]})
        assert hash(first) == hash(second)


class TestDomains:
    def test_active_domain(self):
        instance = Instance.from_tuples({"E": [("a", Null(0))]})
        assert instance.active_domain() == {Constant("a"), Null(0)}

    def test_constants_and_nulls(self):
        instance = Instance.from_tuples({"E": [("a", Null(0))]})
        assert instance.constants() == {Constant("a")}
        assert instance.nulls() == {Null(0)}

    def test_is_ground(self):
        assert Instance.from_tuples({"E": [("a", "b")]}).is_ground()
        assert not Instance.from_tuples({"E": [("a", Null(0))]}).is_ground()


class TestProjection:
    def test_restrict_to(self):
        schema = Schema.from_arities({"E": 2})
        instance = Instance.from_tuples({"E": [("a", "b")], "H": [("x", "y")]})
        projected = instance.restrict_to(schema)
        assert projected.relations() == ["E"]
        assert len(projected) == 1


class TestRendering:
    def test_str_empty(self):
        assert str(Instance()) == "{}"

    def test_pretty_groups_by_relation(self):
        instance = Instance.from_tuples({"E": [("a", "b")], "F": [("c",)]})
        rendered = instance.pretty()
        assert "E:" in rendered and "F:" in rendered


class TestSetOperations:
    def test_difference(self):
        big = Instance.from_tuples({"E": [("a", "b"), ("b", "c")]})
        small = Instance.from_tuples({"E": [("a", "b")]})
        assert big.difference(small) == Instance.from_tuples({"E": [("b", "c")]})

    def test_difference_disjoint(self):
        first = Instance.from_tuples({"E": [("a", "b")]})
        second = Instance.from_tuples({"F": [("c",)]})
        assert first.difference(second) == first

    def test_intersection(self):
        first = Instance.from_tuples({"E": [("a", "b"), ("b", "c")]})
        second = Instance.from_tuples({"E": [("b", "c"), ("c", "d")]})
        assert first.intersection(second) == Instance.from_tuples({"E": [("b", "c")]})

    def test_operators(self):
        first = Instance.from_tuples({"E": [("a", "b")]})
        second = Instance.from_tuples({"E": [("b", "c")]})
        assert (first | second).count("E") == 2
        assert (first - second) == first
        assert len(first & second) == 0

    def test_operations_preserve_operands(self):
        first = Instance.from_tuples({"E": [("a", "b")]})
        second = Instance.from_tuples({"E": [("b", "c")]})
        first | second
        first - second
        first & second
        assert len(first) == 1 and len(second) == 1


class TestChurnRegressions:
    """PR 10 bugfixes: long add/discard churn must not leak bookkeeping."""

    def test_discard_prunes_empty_row_sets(self):
        instance = Instance()
        for i in range(50):
            f = fact(f"R{i}", "a", "b")
            instance.add(f)
            instance.discard(f)
        assert instance._relations == {}
        assert len(instance) == 0

    def test_discard_prunes_empty_index_buckets(self):
        instance = Instance.from_tuples({"E": [("a", "b")]})
        # Force the lazy positional index into existence.
        assert instance.candidate_rows("E", 0, Constant("a"))
        baseline = len(instance._index)
        for i in range(50):
            f = fact("E", f"x{i}", f"y{i}")
            instance.add(f)
            instance.discard(f)
        assert len(instance._index) == baseline
        assert instance.candidate_rows("E", 0, Constant("x0")) == frozenset()

    def test_rename_matches_validated_rebuild(self):
        schema = Schema.from_arities({"E": 2})
        instance = Instance(schema=schema)
        instance.add(fact("E", Null(0), "b"))
        instance.add(fact("E", "a", Null(1)))
        renamed = instance.rename({Null(0): Constant("c"), Null(1): Null(7)})
        validated = Instance(schema=schema)
        for f in instance:
            validated.add(f.substitute({Null(0): Constant("c"), Null(1): Null(7)}))
        assert renamed == validated
        assert renamed.schema is schema

    def test_rename_empty_mapping_returns_independent_copy(self):
        instance = Instance.from_tuples({"E": [("a", "b")]})
        clone = instance.rename({})
        assert clone is not instance
        clone.add(fact("E", "c", "d"))
        assert len(instance) == 1

    def test_empty_rows_view_is_immutable(self):
        instance = Instance()
        empty = instance.rows("missing")
        with pytest.raises(AttributeError):
            empty.add(("a",))  # type: ignore[attr-defined]
        # The shared view cannot leak rows between instances.
        other = Instance()
        assert other.rows("missing") == frozenset()

    def test_empty_candidate_rows_view_is_immutable(self):
        instance = Instance.from_tuples({"E": [("a", "b")]})
        empty = instance.candidate_rows("E", 0, Constant("zz"))
        with pytest.raises(AttributeError):
            empty.add(("zz", "zz"))  # type: ignore[attr-defined]
        assert fact("E", "zz", "zz") not in instance
