"""Property-based fuzz tests for the parser and serialization layers."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.dependencies import TGD
from repro.core.parser import parse_dependency, parse_instance
from repro.core.terms import Constant, Variable
from repro.exceptions import ReproError
from repro.io import dependency_to_text, dumps_instance, loads_instance

FUZZ_SETTINGS = settings(
    max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

identifiers = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
relation_names = st.from_regex(r"[A-Z][a-zA-Z0-9]{0,5}", fullmatch=True)

terms = st.one_of(
    identifiers.map(Variable),
    st.integers(min_value=-99, max_value=99).map(Constant),
    st.from_regex(r"[a-z0-9 _.:-]{0,8}", fullmatch=True).map(Constant),
)

atoms = st.builds(
    Atom,
    relation_names,
    st.lists(terms, min_size=1, max_size=4),
)


def _closed_tgds(body, head):
    """Build a tgd only when both sides are nonempty (enforced by strategy)."""
    return TGD(body, head)


tgds = st.builds(
    _closed_tgds,
    st.lists(atoms, min_size=1, max_size=3),
    st.lists(atoms, min_size=1, max_size=2),
)


class TestDependencyRoundTrip:
    @FUZZ_SETTINGS
    @given(tgds)
    def test_text_round_trip(self, tgd):
        rendered = dependency_to_text(tgd)
        assert parse_dependency(rendered) == tgd


class TestInstanceRoundTrip:
    values = st.one_of(
        st.integers(min_value=-99, max_value=99).map(Constant),
        st.from_regex(r"[a-z0-9 _.:-]{0,8}", fullmatch=True).map(Constant),
    )

    @FUZZ_SETTINGS
    @given(
        st.dictionaries(
            relation_names,
            st.lists(st.tuples(values, values), max_size=4),
            max_size=3,
        )
    )
    def test_json_round_trip(self, raw):
        from repro.core.instance import Instance

        instance = Instance.from_tuples(raw)
        assert loads_instance(dumps_instance(instance)) == instance


class TestParserRobustness:
    @FUZZ_SETTINGS
    @given(st.text(max_size=40))
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """The parser either succeeds or raises a library error — never an
        internal exception like IndexError or KeyError."""
        try:
            parse_dependency(text)
        except ReproError:
            pass

    @FUZZ_SETTINGS
    @given(st.text(alphabet="EHab(),;->= xyz_0123456789'", max_size=40))
    def test_near_miss_inputs(self, text):
        try:
            parse_instance(text)
        except ReproError:
            pass
