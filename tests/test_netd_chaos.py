"""Chaos integration: simulator scenarios re-run over real sockets.

Every test here executes the *same* seeded :class:`~repro.net.Scenario`
twice — once on the in-memory :class:`~repro.net.NetworkSimulator`, once
through :func:`~repro.netd.run_scenario_netd` (real TCP, fault-injecting
:class:`~repro.netd.ChaosProxy`) — and asserts both converge *and* agree
on the final per-peer states.  Agreement uses
:func:`~repro.net.states_agree` (homomorphic equivalence) because the
genomics setting's existential variables materialize as labeled nulls
whose names legitimately differ between runs.

The two registry smoke tests run in tier-1 (a couple of seconds each);
the full scenario × mode × seed sweeps carry ``slow`` + ``chaos``.
"""

import pytest

from repro.net import (
    NetworkSimulator,
    crash_scenario,
    genomics_churn_scenario,
    registry_scenario,
    states_agree,
)
from repro.netd import run_scenario_netd
from repro.obs import MetricsRegistry


def _simulate(scenario, deltas):
    """Run the simulator twin; returns (report, final per-peer states)."""
    simulator = NetworkSimulator(scenario, deltas=deltas)
    report = simulator.run()
    unreachable = set(report.convergence.unreachable)
    return report, {
        name: node.state()
        for name, node in simulator.nodes.items()
        if name not in unreachable
    }


def _assert_twin_agreement(builder, seed, deltas, **netd_kwargs):
    report = run_scenario_netd(builder(seed=seed), deltas=deltas, **netd_kwargs)
    assert report.converged, report.convergence
    assert report.drained
    sim_report, sim_states = _simulate(builder(seed=seed), deltas)
    assert sim_report.converged
    assert sorted(report.unreachable) == sorted(
        sim_report.convergence.unreachable
    )
    for peer, state in report.states.items():
        assert states_agree(state, sim_states[peer]), (
            f"{builder.__name__}(seed={seed}, deltas={deltas}): "
            f"peer {peer!r} diverged between sockets and simulator"
        )
    return report


# ----------------------------------------------------------------------
# tier-1 smoke: registry over real sockets, both wire modes
# ----------------------------------------------------------------------


def test_registry_scenario_converges_on_real_sockets():
    report = _assert_twin_agreement(registry_scenario, seed=3, deltas=False)
    # The chaos proxy genuinely interfered — this was not a clean network.
    assert report.stats.get("chaos_dropped", 0) > 0


def test_registry_scenario_converges_with_deltas():
    report = _assert_twin_agreement(registry_scenario, seed=3, deltas=True)
    assert report.stats.get("sent_deltas", 0) > 0


def test_queue_bound_holds_under_chaos():
    metrics = MetricsRegistry()
    report = run_scenario_netd(
        registry_scenario(seed=3), max_queue=4, metrics=metrics
    )
    assert report.converged
    peak = metrics.gauge("netd.queue_peak").value
    assert peak is not None and peak <= 4  # the depth bound held throughout


# ----------------------------------------------------------------------
# the heavy sweeps: slow + chaos
# ----------------------------------------------------------------------

pytestmark_heavy = [pytest.mark.slow, pytest.mark.chaos]


@pytest.mark.slow
@pytest.mark.chaos
@pytest.mark.parametrize("deltas", [False, True], ids=["snapshot", "delta"])
def test_genomics_churn_agrees_across_transports(deltas):
    # Epoch bumps, withdrawals, and labeled nulls — the hardest scenario.
    _assert_twin_agreement(genomics_churn_scenario, seed=3, deltas=deltas)


@pytest.mark.slow
@pytest.mark.chaos
def test_crash_scenario_agrees_across_transports():
    _assert_twin_agreement(crash_scenario, seed=3, deltas=False)


@pytest.mark.slow
@pytest.mark.chaos
@pytest.mark.parametrize("seed", [1, 2, 5, 8])
@pytest.mark.parametrize(
    "builder",
    [registry_scenario, genomics_churn_scenario, crash_scenario],
    ids=lambda b: b.__name__.replace("_scenario", ""),
)
def test_seed_sweep_agrees_across_transports(builder, seed):
    _assert_twin_agreement(builder, seed=seed, deltas=(seed % 2 == 0))
