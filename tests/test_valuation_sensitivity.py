"""Tests for the sensitivity analysis that fixes unconstrained nulls."""

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.setting import PDESetting
from repro.core.terms import Constant
from repro.solver import ValuationSearch, certain_answers, solve
from repro.solver.enumeration import enumerate_solutions


def provenance_setting() -> PDESetting:
    """The batch column of `log` is never constrained by Σ_ts."""
    return PDESetting.from_text(
        source={"event": 2},
        target={"log": 3},
        st="event(kind, actor) -> log(kind, actor, batch)",
        ts="log(kind, actor, batch) -> event(kind, actor)",
    )


class TestFixableNulls:
    def test_unconstrained_nulls_fixed(self):
        setting = provenance_setting()
        source = parse_instance("; ".join(f"event(k{i}, u{i})" for i in range(10)))
        search = ValuationSearch(setting, source, Instance())
        assert search.stats["fixed_nulls"] == 10
        # The search space collapses to a single valuation.
        solutions = list(search.iter_valuations())
        assert len(solutions) == 1

    def test_constrained_nulls_not_fixed(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",  # y exported: sensitive
        )
        source = parse_instance("A(a); R(a, b)")
        search = ValuationSearch(setting, source, Instance())
        assert search.stats["fixed_nulls"] == 0

    def test_join_positions_are_sensitive(self):
        setting = PDESetting.from_text(
            source={"A": 1, "Flag": 1},
            target={"T": 2, "U": 2},
            st="A(x) -> T(x, y), U(y, x)",
            # y joins the two atoms: its value matters for matching.
            ts="T(x, y), U(y, x2) -> Flag(x)",
        )
        source = parse_instance("A(a); Flag(a)")
        search = ValuationSearch(setting, source, Instance())
        assert search.stats["fixed_nulls"] == 0

    def test_constants_in_ts_body_are_sensitive(self):
        setting = PDESetting.from_text(
            source={"A": 1, "Flag": 1},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, 'special') -> Flag(x)",
        )
        source = parse_instance("A(a)")
        search = ValuationSearch(setting, source, Instance())
        # The null sits where the constant is matched: must stay free.
        assert search.stats["fixed_nulls"] == 0

    def test_fixing_disabled_with_target_constraints(self):
        setting = PDESetting.from_text(
            source={"event": 2},
            target={"log": 3},
            st="event(kind, actor) -> log(kind, actor, batch)",
            ts="log(kind, actor, batch) -> event(kind, actor)",
            t="log(kind, actor, b), log(kind, actor, b2) -> b = b2",
        )
        source = parse_instance("event(k, u)")
        search = ValuationSearch(setting, source, Instance())
        assert search.stats["fixed_nulls"] == 0


class TestCorrectnessPreserved:
    def test_existence_agrees_with_branching(self):
        setting = provenance_setting()
        source = parse_instance("event(k1, u1); event(k2, u2)")
        fast = solve(setting, source, Instance(), method="valuation").exists
        slow = solve(setting, source, Instance(), method="branching").exists
        assert fast == slow is True

    def test_query_relevant_nulls_stay_free(self):
        """A query over the batch column forces those nulls to stay free:
        without the query in relevant_queries, certainty answers about the
        batch would be wrong."""
        setting = provenance_setting()
        source = parse_instance("event(k, u)")
        query = parse_query("q(b) :- log(k2, a2, b)")
        result = certain_answers(setting, query, source, Instance())
        # No batch value is certain (it could be anything).
        assert result.answers == set()

    def test_certainty_of_insensitive_projection(self):
        setting = provenance_setting()
        source = parse_instance("event(k, u)")
        query = parse_query("q(kind, actor) :- log(kind, actor, b)")
        result = certain_answers(setting, query, source, Instance())
        assert result.answers == {(Constant("k"), Constant("u"))}

    def test_enumeration_with_relevant_queries(self):
        from repro.solver.valuation_search import iter_minimal_solutions

        setting = provenance_setting()
        source = parse_instance("event(k, u)")
        query = parse_query("q(b) :- log(k2, a2, b)")
        fixed = list(iter_minimal_solutions(setting, source, Instance()))
        free = list(
            iter_minimal_solutions(
                setting, source, Instance(), relevant_queries=(query,)
            )
        )
        # With the query declared relevant, the batch null enumerates over
        # the domain as well.
        assert len(fixed) == 1
        assert len(free) > 1
