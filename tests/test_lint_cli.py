"""Tests for the ``lint`` CLI subcommand and its exit-code contract.

Acceptance cases: exit 2 on a setting with an arity error, exit 1 on a
warning-only NP-hard boundary setting, exit 0 on a clean C_tract setting.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import _is_json_path, main
from repro.io import dumps_setting
from repro.reductions import egd_boundary_setting


@pytest.fixture
def clean_path(tmp_path, example1_setting):
    path = tmp_path / "clean.json"
    path.write_text(dumps_setting(example1_setting, indent=2))
    return path


@pytest.fixture
def warning_path(tmp_path):
    path = tmp_path / "boundary.json"
    path.write_text(dumps_setting(egd_boundary_setting(), indent=2))
    return path


@pytest.fixture
def error_path(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text(
        json.dumps(
            {
                "source": {"E": 2},
                "target": {"H": 2},
                "sigma_st": ["E(x, y) -> H(x, y, y)"],
            }
        )
    )
    return path


class TestExitCodes:
    def test_clean_setting_exits_zero(self, clean_path, capsys):
        assert main(["lint", str(clean_path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_warning_only_boundary_exits_one(self, warning_path, capsys):
        assert main(["lint", str(warning_path)]) == 1
        out = capsys.readouterr().out
        assert "PDE101" in out
        assert "warning" in out

    def test_arity_error_exits_two(self, error_path, capsys):
        assert main(["lint", str(error_path)]) == 2
        out = capsys.readouterr().out
        assert "PDE002" in out
        assert "error" in out

    def test_worst_code_wins_across_files(self, clean_path, warning_path, error_path):
        assert main(["lint", str(clean_path), str(warning_path)]) == 1
        assert main(["lint", str(clean_path), str(error_path), str(warning_path)]) == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.json")]) == 2
        assert "PDE000" in capsys.readouterr().out

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{oops")
        assert main(["lint", str(path)]) == 2
        assert "PDE000" in capsys.readouterr().out


class TestOutputFormats:
    def test_text_lines_carry_path_and_span(self, warning_path, capsys):
        main(["lint", str(warning_path)])
        out = capsys.readouterr().out
        assert str(warning_path) in out
        assert "sigma_t:1:1" in out  # provenance of the first egd

    def test_json_format(self, warning_path, capsys):
        code = main(["lint", "--format", "json", str(warning_path)])
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["exit_code"] == code == 1
        [entry] = decoded["files"]
        assert entry["path"] == str(warning_path)
        assert entry["summary"]["warnings"] >= 1
        codes = {d["code"] for d in entry["diagnostics"]}
        assert "PDE101" in codes

    def test_json_format_multiple_files(self, clean_path, error_path, capsys):
        main(["lint", "--format", "json", str(clean_path), str(error_path)])
        decoded = json.loads(capsys.readouterr().out)
        assert len(decoded["files"]) == 2
        assert decoded["exit_code"] == 2

    def test_suppression_note_rendered(self, tmp_path, capsys):
        encoded = json.loads(dumps_setting(egd_boundary_setting()))
        encoded["lint_ignore"] = ["PDE101"]
        path = tmp_path / "annotated.json"
        path.write_text(json.dumps(encoded))
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "suppressed via lint_ignore" in out


class TestFileSniffing:
    def test_json_suffix_case_insensitive(self):
        assert _is_json_path("setting.json")
        assert _is_json_path("SETTING.JSON")
        assert _is_json_path("weird.JsOn")
        assert not _is_json_path("instance.txt")
        assert not _is_json_path("jsonfile")

    def test_uppercase_json_instance_loads(self, tmp_path, example1_setting, capsys):
        setting_path = tmp_path / "setting.json"
        setting_path.write_text(dumps_setting(example1_setting, indent=2))
        source = tmp_path / "SOURCE.JSON"
        edges = [["a", "b"], ["b", "c"], ["a", "c"]]
        source.write_text(
            json.dumps({"E": [[{"const": v} for v in edge] for edge in edges]})
        )
        assert main(["solve", str(setting_path), str(source)]) == 0
        assert "solution exists: True" in capsys.readouterr().out


@pytest.fixture
def broken_scenario_path(tmp_path):
    """A scenario file with a fixable warning in the setting (PDE201) and
    one in the timeline (PDE301)."""
    path = tmp_path / "scenario.json"
    path.write_text(
        json.dumps(
            {
                "kind": "scenario",
                "name": "broken",
                "setting": {
                    "name": "registry",
                    "source": {"reg": 2},
                    "target": {"db": 2},
                    "sigma_st": [
                        "reg(k, v) -> db(k, v)",
                        "reg(k, v) -> db(k, v)",
                    ],
                    "sigma_ts": ["db(k, v) -> reg(k, v)"],
                },
                "snapshots": ["reg(a, 1)", "reg(a, 1); reg(b, 2)"],
                "peers": ["p1", "p2"],
                "publisher": "pub",
                "events": [
                    {
                        "event": "partition",
                        "at": 0.5,
                        "groups": [["pub", "p1"], ["p2"]],
                    }
                ],
            },
            indent=2,
        )
    )
    return path


@pytest.fixture
def divergent_scenario_path(tmp_path):
    """Statically divergent: nobody is reachable at quiescence (PDE304)."""
    path = tmp_path / "divergent.json"
    path.write_text(
        json.dumps(
            {
                "kind": "scenario",
                "name": "divergent",
                "setting": {
                    "name": "registry",
                    "source": {"reg": 2},
                    "target": {"db": 2},
                    "sigma_st": ["reg(k, v) -> db(k, v)"],
                    "sigma_ts": ["db(k, v) -> reg(k, v)"],
                },
                "snapshots": ["reg(a, 1)", "reg(a, 1); reg(b, 2)"],
                "peers": ["p1", "p2"],
                "publisher": "pub",
                "events": [
                    {
                        "event": "partition",
                        "at": 0.5,
                        "groups": [["pub"], ["p1", "p2"]],
                    }
                ],
            }
        )
    )
    return path


class TestIgnoreFlag:
    def test_ignore_suppresses_to_clean(self, warning_path):
        assert main(["lint", str(warning_path)]) == 1
        assert main(["lint", str(warning_path), "--ignore", "PDE101"]) == 0

    def test_comma_shorthand(self, warning_path, capsys):
        code = main(["lint", str(warning_path), "--ignore", "PDE101, PDE203"])
        assert code == 0
        assert "suppressed" in capsys.readouterr().out

    def test_missing_file_diagnostic_carries_rule(self, tmp_path, capsys):
        # Regression: the unreadable-file Diagnostic used to omit rule=,
        # which ValueError'd once Diagnostic began requiring a known code.
        code = main(["lint", "--format", "json", str(tmp_path / "nope.json")])
        assert code == 2
        decoded = json.loads(capsys.readouterr().out)
        [entry] = decoded["files"]
        [diagnostic] = entry["diagnostics"]
        assert diagnostic["code"] == "PDE000"
        assert diagnostic["rule"] == "load-failure"


class TestScenarioInputs:
    def test_registered_scenario_name_lints_clean(self, capsys):
        assert main(["lint", "registry", "crash"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_scenario_file_reports_timeline_findings(
        self, broken_scenario_path, capsys
    ):
        assert main(["lint", str(broken_scenario_path)]) == 1
        out = capsys.readouterr().out
        assert "PDE301" in out and "PDE201" in out

    def test_fix_round_trips_clean(self, broken_scenario_path, capsys):
        assert main(["lint", str(broken_scenario_path), "--fix"]) == 1
        capsys.readouterr()
        assert main(["lint", str(broken_scenario_path)]) == 0

    def test_diff_previews_without_writing(self, broken_scenario_path, capsys):
        before = broken_scenario_path.read_text()
        main(["lint", str(broken_scenario_path), "--diff"])
        out = capsys.readouterr().out
        assert "(fixed)" in out and "heal" in out
        assert broken_scenario_path.read_text() == before

    def test_delta_flag_checks_chain_dooming(self, tmp_path, capsys):
        path = tmp_path / "doomed.json"
        path.write_text(
            json.dumps(
                {
                    "kind": "scenario",
                    "name": "doomed",
                    "setting": {
                        "name": "registry",
                        "source": {"reg": 2},
                        "target": {"db": 2},
                        "sigma_st": ["reg(k, v) -> db(k, v)"],
                        "sigma_ts": ["db(k, v) -> reg(k, v)"],
                    },
                    "snapshots": [
                        "reg(a, 1)",
                        "reg(a, 1); reg(b, 2)",
                        "reg(a, 1); reg(b, 2); reg(c, 3)",
                    ],
                    "peers": ["p1"],
                    "publisher": "pub",
                    "events": [
                        {"event": "partition", "at": 0.5, "groups": [["pub"], ["p1"]]},
                        {"event": "heal", "at": 1.5},
                    ],
                }
            )
        )
        assert main(["lint", str(path)]) == 0
        capsys.readouterr()
        assert main(["lint", str(path), "--delta"]) == 1
        assert "PDE308" in capsys.readouterr().out


class TestSimulatePreflight:
    def test_divergent_scenario_refused_without_running(
        self, divergent_scenario_path, capsys
    ):
        assert main(["simulate", str(divergent_scenario_path), "--lint"]) == 1
        captured = capsys.readouterr()
        assert "PDE304" in captured.err
        assert "refusing" in captured.err
        # The run never started: no simulation report was printed.
        assert "scenario:" not in captured.out

    def test_force_overrides_refusal(self, divergent_scenario_path, capsys):
        assert main(["simulate", str(divergent_scenario_path), "--force"]) == 0
        captured = capsys.readouterr()
        assert "overridden by --force" in captured.err
        assert "converged: True (vacuously" in captured.out

    def test_shipped_scenarios_pass_preflight(self, capsys):
        from repro.net import scenario_registry

        for name in scenario_registry():
            assert main(["simulate", name, "--lint"]) == 0, name
            captured = capsys.readouterr()
            assert "pre-flight: ok" in captured.err, name

    def test_scenario_file_simulates(self, broken_scenario_path, capsys):
        # Warnings do not block the pre-flight; the file runs to
        # convergence despite its unhealed partition (p2 is excluded).
        assert main(["simulate", str(broken_scenario_path), "--lint"]) == 0
        captured = capsys.readouterr()
        assert "PDE301" in captured.err
        assert "converged: True" in captured.out

    def test_unknown_scenario_still_errors(self, capsys):
        assert main(["simulate", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
