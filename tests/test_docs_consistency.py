"""Anti-rot checks: the documentation references real code.

Every dotted ``repro.*`` path mentioned in the markdown docs must import,
and every attribute it names must exist — so refactors cannot silently
orphan the docs.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
DOC_FILES = sorted(
    list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
)

DOTTED = re.compile(r"`(repro(?:\.[a-z_]+)+)(?:\.([A-Za-z_][A-Za-z0-9_]*))?`")


def referenced_paths():
    for path in DOC_FILES:
        for match in DOTTED.finditer(path.read_text()):
            yield path.name, match.group(1), match.group(2)


# The attribute may be None (bare module reference): key on "" instead so
# the same module can appear both bare and with attributes.
PATHS = sorted(set(referenced_paths()), key=lambda ref: (ref[0], ref[1], ref[2] or ""))


@pytest.mark.parametrize(
    "doc,module,attribute",
    PATHS,
    ids=[f"{doc}:{module}{'.' + attr if attr else ''}" for doc, module, attr in PATHS],
)
def test_reference_resolves(doc, module, attribute):
    try:
        imported = importlib.import_module(module)
    except ModuleNotFoundError:
        # The dotted path may end in an attribute (repro.core.cores.core):
        # retry with the last segment as the attribute.
        parent, _, tail = module.rpartition(".")
        imported = importlib.import_module(parent)
        assert hasattr(imported, tail), f"{doc}: {module} not found"
        return
    if attribute:
        assert hasattr(imported, attribute), f"{doc}: {module}.{attribute} missing"


def test_docs_exist():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "DESIGN.md", "EXPERIMENTS.md"} <= names
    assert (REPO / "docs" / "paper_to_code.md").exists()


def test_examples_referenced_in_readme_exist():
    readme = (REPO / "README.md").read_text()
    for match in re.finditer(r"`([a-z_]+\.py)`", readme):
        name = match.group(1)
        if name in ("setup.py",):
            continue
        assert (REPO / "examples" / name).exists(), name
