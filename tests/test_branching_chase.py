"""Tests for the branching-chase solver (Σ_t ≠ ∅; Theorem 1 upper bound)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.solver import (
    BranchingChaseSolver,
    brute_force_exists,
    exists_solution_branching,
)


@pytest.fixture
def key_setting() -> PDESetting:
    """A target key constraint interacting with Σ_st and Σ_ts."""
    return PDESetting.from_text(
        source={"A": 2, "R": 2},
        target={"T": 2},
        st="A(x, q) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
        t="T(x, y), T(x, y2) -> y = y2",
    )


class TestEgdSettings:
    def test_key_forces_unique_witness(self, key_setting):
        source = parse_instance("A(a, 1); R(a, b)")
        result = exists_solution_branching(key_setting, source, Instance())
        assert result.exists
        assert key_setting.is_solution(source, Instance(), result.solution)

    def test_conflicting_requirements_unsolvable(self, key_setting):
        # J forces T(a, c) and T(a, d): the key egd fails on constants.
        source = parse_instance("A(a, 1); R(a, c); R(a, d)")
        target = parse_instance("T(a, c); T(a, d)")
        assert not exists_solution_branching(key_setting, source, target).exists

    def test_key_with_single_prefill(self, key_setting):
        source = parse_instance("A(a, 1); R(a, c); R(a, d)")
        target = parse_instance("T(a, c)")
        result = exists_solution_branching(key_setting, source, target)
        assert result.exists
        assert result.solution.contains_instance(target)

    def test_egd_merge_breaks_ts(self, key_setting):
        # The only R-edge from a is (a, b); but J pins T(a, z) with z != b
        # having no R-backing: unsolvable.
        source = parse_instance("A(a, 1); R(a, b)")
        target = parse_instance("T(a, z)")
        assert not exists_solution_branching(key_setting, source, target).exists


class TestTargetTgdSettings:
    def test_full_target_tgd_closure(self):
        setting = PDESetting.from_text(
            source={"A": 2, "R": 2},
            target={"T": 2},
            st="A(x, y) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
            t="T(x, y) -> T(y, x)",
        )
        # Symmetric closure of T must be R-backed in both directions.
        good = parse_instance("A(a, b); R(a, b); R(b, a)")
        bad = parse_instance("A(a, b); R(a, b)")
        assert exists_solution_branching(setting, good, Instance()).exists
        assert not exists_solution_branching(setting, bad, Instance()).exists

    def test_existential_target_tgd(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 1, "U": 2},
            st="A(x) -> T(x)",
            ts="U(x, y) -> R(x, y)",
            t="T(x) -> U(x, y)",
        )
        good = parse_instance("A(a); R(a, b)")
        bad = parse_instance("A(a); R(c, d)")
        assert exists_solution_branching(setting, good, Instance()).exists
        assert not exists_solution_branching(setting, bad, Instance()).exists

    def test_non_weakly_acyclic_rejected(self):
        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2},
            st="A(x) -> T(x, x)",
            t="T(x, y) -> T(y, z)",
        )
        with pytest.raises(SolverError):
            exists_solution_branching(setting, parse_instance("A(a)"), Instance())

    def test_plain_data_exchange_always_solvable(self):
        # No Σ_ts, weakly acyclic Σ_t: solutions always exist [FKMP03].
        setting = PDESetting.from_text(
            source={"A": 2},
            target={"T": 2, "U": 2},
            st="A(x, y) -> T(x, y)",
            t="T(x, y) -> U(x, w)",
        )
        source = parse_instance("A(a, b); A(c, d)")
        result = exists_solution_branching(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)


class TestAgainstBruteForce:
    def test_key_setting_agreement(self, key_setting):
        cases = [
            "A(a, 1); R(a, b)",
            "A(a, 1); R(c, d)",
            "A(a, 1); A(c, 2); R(a, b); R(c, d)",
            "A(a, 1); A(a, 2); R(a, b)",
        ]
        for text in cases:
            source = parse_instance(text)
            fast = exists_solution_branching(key_setting, source, Instance()).exists
            slow = brute_force_exists(key_setting, source, Instance(), extra_fresh=1)
            assert fast == slow, text


class TestSolverMechanics:
    def test_node_budget(self, key_setting):
        source = parse_instance("A(a, 1); R(a, b)")
        with pytest.raises(SolverError):
            exists_solution_branching(key_setting, source, Instance(), node_budget=1)

    def test_stats(self, key_setting):
        source = parse_instance("A(a, 1); R(a, b)")
        result = exists_solution_branching(key_setting, source, Instance())
        assert result.stats["nodes"] >= 1

    def test_iter_solutions_all_valid(self, key_setting):
        source = parse_instance("A(a, 1); R(a, b); R(a, c)")
        solver = BranchingChaseSolver(key_setting, source, Instance())
        found = 0
        for solution in solver.iter_solutions():
            assert key_setting.is_solution(source, Instance(), solution)
            found += 1
            if found > 10:
                break
        assert found >= 2  # T(a, b) and T(a, c) both reachable
