"""Tests for conjunctive-query containment (Chandra-Merlin)."""

import pytest

from repro.core.parser import parse_query
from repro.core.terms import Constant, Null
from repro.exceptions import DependencyError


class TestCanonicalInstance:
    def test_free_variables_become_tagged_constants(self):
        query = parse_query("q(x) :- E(x, y)")
        instance, answer = query.canonical_instance()
        assert answer == (Constant("?x"),)
        assert len(instance) == 1

    def test_existential_variables_become_nulls(self):
        query = parse_query("q(x) :- E(x, y), E(y, z)")
        instance, _answer = query.canonical_instance()
        assert len(instance.nulls()) == 2

    def test_join_structure_preserved(self):
        query = parse_query("q(x) :- E(x, y), E(y, x)")
        instance, _answer = query.canonical_instance()
        rows = list(instance.tuples("E"))
        assert len(rows) == 2
        # The join variable appears in both rows.
        values = [value for row in rows for value in row]
        y_null = next(v for v in values if isinstance(v, Null))
        assert values.count(y_null) == 2


class TestContainment:
    def test_longer_path_contained_in_shorter(self):
        """Paths of length 2 are contained in 'has an outgoing edge'."""
        path2 = parse_query("q(x) :- E(x, y), E(y, z)")
        edge = parse_query("q(x) :- E(x, y)")
        assert path2.contained_in(edge)
        assert not edge.contained_in(path2)

    def test_self_containment(self):
        query = parse_query("q(x, z) :- E(x, y), E(y, z)")
        assert query.contained_in(query)
        assert query.equivalent_to(query)

    def test_equivalence_up_to_redundancy(self):
        lean = parse_query("q(x) :- E(x, y)")
        redundant = parse_query("q(x) :- E(x, y), E(x, y2)")
        assert lean.equivalent_to(redundant)

    def test_incomparable_queries(self):
        loop = parse_query("q(x) :- E(x, x)")
        edge = parse_query("q(x) :- E(x, y)")
        assert loop.contained_in(edge)
        assert not edge.contained_in(loop)

    def test_boolean_containment(self):
        triangle = parse_query("E(x, y), E(y, z), E(z, x)")
        cycle = parse_query("E(x, y), E(y, x)")
        # A 2-cycle maps into the canonical triangle? No: needs E both ways.
        assert not triangle.contained_in(cycle)
        # Every triangle has an edge.
        edge = parse_query("E(x, y)")
        assert triangle.contained_in(edge)

    def test_different_relations_not_contained(self):
        first = parse_query("q(x) :- E(x, y)")
        second = parse_query("q(x) :- F(x, y)")
        assert not first.contained_in(second)

    def test_arity_mismatch_rejected(self):
        unary = parse_query("q(x) :- E(x, y)")
        binary = parse_query("q(x, y) :- E(x, y)")
        with pytest.raises(DependencyError):
            unary.contained_in(binary)

    def test_containment_with_constants(self):
        specific = parse_query("q(x) :- E(x, 'a')")
        general = parse_query("q(x) :- E(x, y)")
        assert specific.contained_in(general)
        assert not general.contained_in(specific)


class TestMinimization:
    def test_redundant_atom_removed(self):
        query = parse_query("q(x) :- E(x, y), E(x, y2)")
        minimized = query.minimize()
        assert len(minimized.body) == 1
        assert minimized.equivalent_to(query)

    def test_partial_redundancy(self):
        query = parse_query("q(x) :- E(x, y), E(y, z), E(x, w)")
        minimized = query.minimize()
        assert len(minimized.body) == 2
        assert minimized.equivalent_to(query)

    def test_already_minimal_unchanged_in_size(self):
        query = parse_query("q(x, z) :- E(x, y), E(y, z)")
        assert len(query.minimize().body) == 2

    def test_boolean_components_fold(self):
        query = parse_query("E(x, y), E(u, v)")
        minimized = query.minimize()
        assert len(minimized.body) == 1
        assert minimized.equivalent_to(query)

    def test_self_loop_absorbs_edge(self):
        query = parse_query("q(x) :- E(x, x), E(x, y)")
        minimized = query.minimize()
        assert len(minimized.body) == 1
        assert minimized.equivalent_to(query)

    def test_free_variables_preserved(self):
        query = parse_query("q(x, z) :- E(x, y), E(y, z), E(x, w)")
        minimized = query.minimize()
        assert minimized.free == query.free
        assert minimized.equivalent_to(query)

    def test_minimize_idempotent(self):
        query = parse_query("q(x) :- E(x, y), E(y, z), E(x, w)")
        once = query.minimize()
        twice = once.minimize()
        assert len(once.body) == len(twice.body)
