"""Tests for the analysis report and DOT exports."""

from repro.report import describe_setting, position_graph_dot, relation_graph_dot
from repro.reductions import clique_setting, coloring_setting
from repro.workloads import genomics_setting


class TestDescribeSetting:
    def test_ctract_setting_report(self, example1_setting):
        report = describe_setting(example1_setting)
        assert "in C_tract: **True**" in report
        assert "Figure 3" in report
        assert "E(x, z), E(z, y) -> H(x, y)" in report

    def test_clique_setting_report(self):
        report = describe_setting(clique_setting())
        assert "in C_tract: **False**" in report
        assert "valuation-search" in report
        assert "marked positions: (P, 1), (P, 3)" in report
        assert "violation:" in report

    def test_marked_variables_listed(self):
        report = describe_setting(clique_setting())
        assert "marked variables" in report
        assert "z" in report and "w" in report

    def test_full_st_reports_no_marks(self, marked_example_setting):
        from repro import PDESetting

        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(y, x)",
            ts="H(x, y) -> E(x, y)",
        )
        report = describe_setting(setting)
        assert "marked positions: none" in report

    def test_disjunctive_setting_report(self):
        report = describe_setting(coloring_setting())
        assert "disjunct" in report.lower() or "violation" in report

    def test_genomics_report_structure(self):
        report = describe_setting(genomics_setting())
        assert report.startswith("# Setting analysis: genomics-sync")
        assert "## Dependencies" in report
        assert "## Tractability" in report
        assert "## Recommended solver" in report


class TestDotExports:
    def test_relation_graph_dot(self, example1_setting):
        dot = relation_graph_dot(example1_setting)
        assert dot.startswith("digraph relations {")
        assert '"E" [shape=box];' in dot
        assert '"H" [shape=ellipse];' in dot
        assert '"E" -> "H";' in dot
        assert '"H" -> "E";' in dot
        assert dot.rstrip().endswith("}")

    def test_position_graph_dot_special_edges(self):
        from repro import PDESetting

        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, w)",
        )
        dot = position_graph_dot(setting)
        assert '"E.0" -> "H.0";' in dot
        assert 'style=dashed' in dot  # the special edge to the null position

    def test_dot_is_text_only(self, example1_setting):
        for render in (relation_graph_dot, position_graph_dot):
            dot = render(example1_setting)
            assert isinstance(dot, str)
            assert dot.count("{") == dot.count("}")
