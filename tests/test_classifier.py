"""Tests for the C_tract classifier (Definition 9) against every example
the paper discusses."""

from repro.core.setting import PDESetting
from repro.reductions import (
    clique_setting,
    coloring_setting,
    egd_boundary_setting,
    full_tgd_boundary_setting,
)
from repro.tractability import classify, is_in_ctract


class TestPaperExamples:
    def test_example1_in_ctract(self, example1_setting):
        report = classify(example1_setting)
        assert report.in_ctract
        assert report.lav_ts
        assert report.full_st

    def test_definition8_illustration_in_ctract(self, marked_example_setting):
        # LAV Σ_ts (single literal, no repeated variables) => conditions
        # 1 and 2.1 hold.
        report = classify(marked_example_setting)
        assert report.in_ctract
        assert report.condition2_1

    def test_clique_setting_not_in_ctract(self):
        report = classify(clique_setting())
        assert not report.in_ctract
        # Condition 1 holds (each marked variable occurs once per lhs);
        # conditions 2.1 and 2.2 both fail, exactly as Section 4 analyzes.
        assert report.condition1
        assert not report.condition2_1
        assert not report.condition2_2
        assert report.violations

    def test_egd_boundary_st_ts_satisfy_conditions(self):
        report = classify(egd_boundary_setting())
        assert not report.in_ctract  # Σ_t is non-empty
        assert report.has_target_constraints
        assert report.condition1
        assert report.condition2_1
        assert report.lav_ts

    def test_full_tgd_boundary_st_ts_satisfy_conditions(self):
        report = classify(full_tgd_boundary_setting())
        assert not report.in_ctract
        assert report.has_target_constraints
        assert report.condition1
        assert report.condition2_1

    def test_coloring_setting_conditions_hold_but_disjunction_excludes(self):
        # The paper: "Σ_st and Σ_ts satisfy conditions (1) and (2.2)" yet
        # the setting is intractable because of the disjunction.
        report = classify(coloring_setting())
        assert not report.in_ctract
        assert report.has_disjunctive_ts
        assert report.condition1
        assert report.condition2_2


class TestSubclasses:
    def test_full_st_implies_ctract(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(y, x)",
            ts="H(x, y), H(y, z) -> E(x, w), E(w, z)",
        )
        report = classify(setting)
        assert report.in_ctract
        assert report.full_st
        assert "Corollary 1" in report.subclass() or "full" in report.subclass()

    def test_lav_ts_implies_ctract(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, w)",
            ts="H(x, y) -> E(x, w)",
        )
        report = classify(setting)
        assert report.in_ctract
        assert report.lav_ts

    def test_condition1_violation(self):
        # Marked variable appears twice in the lhs of a ts tgd.
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, w)",  # marks (H, 1)
            ts="H(x, y), H(z, y) -> E(x, z)",  # y marked, occurs twice
        )
        report = classify(setting)
        assert not report.condition1
        assert not report.in_ctract

    def test_condition1_violation_within_single_atom(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(w, w)",  # marks (H, 0) and (H, 1)
            ts="H(y, y) -> E(y, y)",  # y marked, occurs twice in one atom
        )
        assert not classify(setting).condition1

    def test_condition2_2_body_adjacent_pair_ok(self):
        # Marked u, v co-occur in the rhs AND together in one lhs atom.
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(u, v)",  # marks both positions of H
            ts="H(u, v) -> E(u, v)",
        )
        report = classify(setting)
        assert report.condition2_2
        assert report.in_ctract

    def test_condition2_2_body_absent_pair_ok(self):
        # Marked pair (w1, w2) are existentials: absent from the lhs.
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(y, x)",
            ts="H(x, y), H(y, z) -> E(w1, w2)",
        )
        report = classify(setting)
        assert report.condition2_2
        assert report.in_ctract

    def test_condition2_2_distance_two_violation(self):
        # The paper's point: connected via a path of length two is NOT
        # enough — the clique setting's z, z2 are connected through x.
        report = classify(clique_setting())
        assert any("condition 2.2" in violation for violation in report.violations)

    def test_target_constraints_exclude_from_ctract(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(x, y)",
            ts="H(x, y) -> E(x, y)",
            t="H(x, y), H(x, y2) -> y = y2",
        )
        report = classify(setting)
        assert report.has_target_constraints
        assert not report.in_ctract

    def test_is_in_ctract_helper(self, example1_setting):
        assert is_in_ctract(example1_setting)
        assert not is_in_ctract(clique_setting())

    def test_subclass_reporting(self, example1_setting):
        assert classify(example1_setting).subclass() == "full Σ_st + LAV Σ_ts"
        assert classify(clique_setting()).subclass() == "not in C_tract"


class TestViolationMessages:
    """``CtractReport.violations`` names the offending tgd and variable,
    one entry per failed condition of Definition 9."""

    def test_condition1_violation_names_tgd_and_variable(self):
        setting = PDESetting.from_text(
            source={"S": 1},
            target={"T": 2},
            st="S(x) -> T(x, y)",
            ts="T(x, x) -> S(x)",
        )
        report = classify(setting)
        assert not report.condition1
        [violation] = [v for v in report.violations if v.startswith("condition 1")]
        assert "marked variable x occurs 2 times" in violation
        assert "T(x, x) -> S(x)" in violation

    def test_condition2_1_violation_names_tgd_and_literal_count(self):
        report = classify(clique_setting())
        assert not report.condition2_1
        per_tgd = [v for v in report.violations if v.startswith("condition 2.1")]
        assert len(per_tgd) == 3  # one per multi-literal Σ_ts tgd
        assert all("has 2 literals" in v for v in per_tgd)
        assert any("P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)" in v for v in per_tgd)

    def test_condition2_2_violation_names_marked_pair(self):
        report = classify(clique_setting())
        assert not report.condition2_2
        per_pair = [v for v in report.violations if v.startswith("condition 2.2")]
        assert any(
            "marked variables z and z2 co-occur" in v
            and "P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)" in v
            for v in per_pair
        )
        assert all("neither body-adjacent nor both body-absent" in v for v in per_pair)

    def test_condition2_summary_present_when_both_fail(self):
        report = classify(clique_setting())
        assert "condition 2: neither 2.1 nor 2.2 holds" in report.violations

    def test_no_condition2_violations_when_2_1_holds(self):
        # Multi-literal lhs nowhere: 2.1 holds, so no per-tgd 2.1 entries
        # even if 2.2 would fail.
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(y, x)",
            ts="H(x, y) -> E(x, y)",
        )
        report = classify(setting)
        assert report.condition2_1
        assert not any(v.startswith("condition 2") for v in report.violations)

    def test_clean_setting_has_no_violations(self, example1_setting):
        assert classify(example1_setting).violations == ()
