"""Experiment E1: the full Example 1 walkthrough, end to end.

Reproduces every claim the paper makes about its running example, through
the public API.
"""

from repro import Instance, enumerate_solutions, parse_instance, parse_query, solve
from repro.solver import certain_answers


class TestExample1Semantics:
    def test_no_solution_for_open_path(self, example1_setting):
        # I = {E(a,b), E(b,c)}, J = ∅: H(a, c) is forced but E(a, c) is
        # missing, so no solution exists.
        result = solve(example1_setting, parse_instance("E(a, b); E(b, c)"), Instance())
        assert not result.exists

    def test_unique_solution_for_self_loop(self, example1_setting):
        # I = {E(a,a)}: J' = {H(a,a)} is the only solution.
        source = parse_instance("E(a, a)")
        result = solve(example1_setting, source, Instance())
        assert result.exists
        assert result.solution == parse_instance("H(a, a)")
        minimal = list(enumerate_solutions(example1_setting, source, Instance()))
        assert minimal == [parse_instance("H(a, a)")]

    def test_two_solutions_for_triangle_ish(self, example1_setting, triangle_ish_source):
        # Both {H(a,c)} and {H(a,b), H(b,c), H(a,c)} are solutions.
        small = parse_instance("H(a, c)")
        large = parse_instance("H(a, b); H(b, c); H(a, c)")
        assert example1_setting.is_solution(triangle_ish_source, Instance(), small)
        assert example1_setting.is_solution(triangle_ish_source, Instance(), large)

    def test_solutions_not_unique_up_to_isomorphism(
        self, example1_setting, triangle_ish_source
    ):
        small = parse_instance("H(a, c)")
        large = parse_instance("H(a, b); H(b, c); H(a, c)")
        assert len(small) != len(large)  # not isomorphic


class TestExample1CertainAnswers:
    def test_certain_true_on_self_loop(self, example1_setting):
        query = parse_query("H(x, y), H(y, z)")
        result = certain_answers(
            example1_setting, query, parse_instance("E(a, a)"), Instance()
        )
        assert result.boolean_value is True

    def test_certain_false_on_triangle_ish(self, example1_setting, triangle_ish_source):
        query = parse_query("H(x, y), H(y, z)")
        result = certain_answers(
            example1_setting, query, triangle_ish_source, Instance()
        )
        assert result.boolean_value is False


class TestExample1DataExchangeContrast:
    def test_without_ts_solutions_always_exist(self):
        # The paper's contrast: drop Σ_ts and Σ_t, and solutions always
        # exist in plain data exchange.
        from repro import PDESetting

        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, z), E(z, y) -> H(x, y)",
        )
        for text in ["E(a, b); E(b, c)", "E(a, a)", "E(a, b)"]:
            assert solve(setting, parse_instance(text), Instance()).exists
