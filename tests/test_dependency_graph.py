"""Tests for the relation-level dependency graph (Section 3.2)."""

from repro.core.dependency_graph import is_acyclic, relation_dependency_graph
from repro.core.parser import parse_dependencies, parse_dependency


class TestGraphConstruction:
    def test_tgd_edges(self):
        graph = relation_dependency_graph([parse_dependency("E(x, y) -> H(x, y)")])
        assert graph == {"E": {"H"}, "H": set()}

    def test_multi_atom_edges(self):
        graph = relation_dependency_graph(
            [parse_dependency("A(x), B(x) -> C(x), D(x)")]
        )
        assert graph["A"] == {"C", "D"}
        assert graph["B"] == {"C", "D"}

    def test_egd_contributes_nodes_only(self):
        graph = relation_dependency_graph(
            [parse_dependency("P(x, y), P(x, y2) -> y = y2")]
        )
        assert graph == {"P": set()}

    def test_disjunctive_edges(self):
        graph = relation_dependency_graph(
            [parse_dependency("E(x, y) -> (R(x)) | (B(y))")]
        )
        assert graph["E"] == {"R", "B"}


class TestAcyclicity:
    def test_acyclic(self):
        graph = {"A": {"B"}, "B": {"C"}, "C": set()}
        assert is_acyclic(graph)

    def test_cycle(self):
        graph = {"A": {"B"}, "B": {"A"}}
        assert not is_acyclic(graph)

    def test_self_loop(self):
        assert not is_acyclic({"A": {"A"}})

    def test_empty(self):
        assert is_acyclic({})

    def test_example1_setting_is_cyclic(self, example1_setting):
        # E -> H (Σ_st) and H -> E (Σ_ts): a relation-level cycle.
        graph = relation_dependency_graph(example1_setting.all_dependencies())
        assert not is_acyclic(graph)

    def test_dependencies_spanning_graph(self):
        dependencies = parse_dependencies(
            """
            D(x, y) -> P(x, z, y, w)
            P(x, z, y, w) -> E(z, w)
            """
        )
        graph = relation_dependency_graph(dependencies)
        assert is_acyclic(graph)
        assert graph["D"] == {"P"}
        assert graph["P"] == {"E"}
