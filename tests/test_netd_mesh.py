"""Relay subscriptions over real sockets: chains of daemons, kill -9.

The tier-1 tests here boot a 3-hop chain of daemons on the loopback and
stay well under a second of wall clock each; the full scenario harness
runs under chaos proxies are marked ``chaos`` and ride the nightly lane.
"""

import asyncio

import pytest

from repro.core.parser import parse_instance
from repro.net import (
    RelayLink,
    Scenario,
    registry_setting,
    relay_chain_scenario,
    relay_mesh_scenario,
    states_agree,
)
from repro.net.simulator import NetworkSimulator
from repro.netd import PublisherClient, SyncDaemon, run_scenario_netd
from repro.sync import Stamp

SNAPSHOTS = [
    parse_instance("reg(a, 1)"),
    parse_instance("reg(a, 1); reg(b, 2)"),
    parse_instance("reg(b, 2); reg(c, 3)"),
    parse_instance("reg(b, 2); reg(c, 3); reg(d, 4)"),
]


def run(coroutine):
    return asyncio.run(coroutine)


async def _wait(predicate, timeout=10.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


async def _chain(tmp_path, **b_kwargs):
    """origin -> relay-a@A -> relay-b@B -> leaf@C, one daemon per hop."""
    setting = registry_setting()
    daemon_c = SyncDaemon(setting, ["leaf"], journal_dir=tmp_path / "C")
    await daemon_c.start()
    daemon_b = SyncDaemon(
        setting,
        ["relay-b"],
        journal_dir=tmp_path / "B",
        relays={"relay-b": [("leaf", daemon_c.address)]},
        **b_kwargs,
    )
    await daemon_b.start()
    daemon_a = SyncDaemon(
        setting,
        ["relay-a"],
        journal_dir=tmp_path / "A",
        relays={"relay-a": [("relay-b", daemon_b.address)]},
    )
    await daemon_a.start()
    return daemon_a, daemon_b, daemon_c


def test_three_hop_chain_over_sockets(tmp_path):
    async def scenario():
        daemon_a, daemon_b, daemon_c = await _chain(tmp_path)
        client = PublisherClient(
            daemon_a.address, "relay-a", sender="origin", ack_timeout=2.0
        )
        await client.start()
        for index, snapshot in enumerate(SNAPSHOTS):
            assert await client.publish(Stamp(1, index + 1), snapshot) == "applied"
        final = Stamp(1, len(SNAPSHOTS))
        await _wait(lambda: daemon_c.hosts["leaf"].watermark == final)

        # The leaf's state arrived purely by relay: two forwards per round.
        assert daemon_c.peer_state("leaf") == parse_instance(
            "db(b, 2); db(c, 3); db(d, 4)"
        )
        assert daemon_a.stats["forwarded"] == len(SNAPSHOTS)
        assert daemon_b.stats["forwarded"] == len(SNAPSHOTS)
        # Every hop scored: healthy links sit above their initial 1.0.
        assert daemon_a.scorer.snapshot()["relay-a->relay-b"] > 1.0
        assert daemon_b.scorer.snapshot()["relay-b->leaf"] > 1.0
        # The ops snapshot carries the scores for `obs top`.
        assert "relay-b->leaf" in daemon_b.stats_payload()["scores"]

        await client.close()
        for daemon in (daemon_a, daemon_b, daemon_c):
            assert await daemon.stop() is True

    run(scenario())


def test_kill9_middle_relay_no_duplicate_applies(tmp_path):
    """kill -9 the middle daemon mid-chain; zero duplicate leaf applies.

    The stamp-watermark argument, end to end over real sockets: after
    the middle relay is aborted and rebooted from its journals, nothing
    downstream is ever applied twice — re-forwards and re-publishes of
    already-applied stamps all land stale.
    """

    async def scenario():
        daemon_a, daemon_b, daemon_c = await _chain(tmp_path)
        address_b = daemon_b.address
        client = PublisherClient(
            daemon_a.address, "relay-a", sender="origin", ack_timeout=2.0
        )
        await client.start()

        for index in (1, 2):
            assert await client.publish(Stamp(1, index), SNAPSHOTS[index - 1]) == "applied"
        await _wait(lambda: daemon_c.hosts["leaf"].watermark == Stamp(1, 2))

        # kill -9: no BYE, no drain, journals are the only survivors.
        daemon_b.abort()
        score_before = daemon_a.scorer.snapshot()["relay-a->relay-b"]
        assert await client.publish(Stamp(1, 3), SNAPSHOTS[2]) == "applied"
        # Wait until A's relay pump has given up on the dead downstream
        # (scored the link down), so the missed round is deterministic.
        await _wait(
            lambda: daemon_a.scorer.snapshot()["relay-a->relay-b"] < score_before,
            timeout=30.0,
        )

        # Reboot the middle relay on the same address and journals.
        daemon_b2 = SyncDaemon(
            registry_setting(),
            ["relay-b"],
            listen=address_b,
            journal_dir=tmp_path / "B",
            relays={"relay-b": [("leaf", daemon_c.address)]},
        )
        await daemon_b2.start()
        # Journal resume: the watermark survived the kill.
        assert daemon_b2.hosts["relay-b"].watermark == Stamp(1, 2)

        assert await client.publish(Stamp(1, 4), SNAPSHOTS[3]) == "applied"
        await _wait(lambda: daemon_c.hosts["leaf"].watermark == Stamp(1, 4), timeout=30.0)

        # Duplicate injection: replay the final stamp straight at the
        # leaf, as a flaky relay retransmit would.
        replay = PublisherClient(
            daemon_c.address, "leaf", sender="relay-b", ack_timeout=2.0
        )
        await replay.start()
        assert await replay.publish(Stamp(1, 4), SNAPSHOTS[3]) == "stale"
        # ... and replay an old stamp at the origin: no re-forward.
        forwarded_before = daemon_a.stats["forwarded"]
        assert await client.publish(Stamp(1, 2), SNAPSHOTS[1]) == "stale"
        assert daemon_a.stats["forwarded"] == forwarded_before

        # The proof: the leaf applied exactly its distinct fresh stamps
        # (1.1, 1.2, 1.4 — 1.3 died with the relay), nothing twice.
        leaf_stats = daemon_c.hosts["leaf"].stats
        assert leaf_stats["applied"] == 3
        assert leaf_stats["stale"] >= 1
        assert daemon_c.peer_state("leaf") == parse_instance(
            "db(b, 2); db(c, 3); db(d, 4)"
        )

        await client.close()
        await replay.close()
        for daemon in (daemon_a, daemon_b2, daemon_c):
            assert await daemon.stop() is True

    run(scenario())


def test_mesh_harness_clean_network(tmp_path):
    """A topology scenario through run_scenario_netd without chaos."""
    scenario = Scenario(
        name="mini-chain",
        description="2-hop chain, clean network",
        setting=registry_setting(),
        publisher="origin",
        peers=["mid", "leaf"],
        snapshots=SNAPSHOTS[:2],
        topology=(RelayLink("origin", "mid"), RelayLink("mid", "leaf")),
    )
    report = run_scenario_netd(
        scenario, journal_dir=tmp_path, use_chaos=False, time_scale=0.01
    )
    assert report.converged
    assert not report.unreachable
    assert report.stats.get("forwarded", 0) >= len(SNAPSHOTS[:2])
    assert "mid->leaf" in report.scores


@pytest.mark.slow
@pytest.mark.chaos
@pytest.mark.parametrize("deltas", [False, True], ids=["snap", "delta"])
def test_relay_chain_harness_matches_simulator(tmp_path, deltas):
    scenario = relay_chain_scenario(seed=0)
    report = run_scenario_netd(
        scenario, journal_dir=tmp_path / "netd", deltas=deltas
    )
    assert report.converged
    assert report.stats.get("forwarded", 0) > 0
    simulator = NetworkSimulator(
        relay_chain_scenario(seed=0), journal_dir=tmp_path / "sim", deltas=deltas
    )
    sim_report = simulator.run()
    assert sim_report.converged
    for peer, state in report.states.items():
        if peer not in sim_report.convergence.unreachable:
            assert states_agree(state, simulator.nodes[peer].state())


@pytest.mark.slow
@pytest.mark.chaos
def test_relay_mesh_scores_downgrade_over_sockets(tmp_path):
    report = run_scenario_netd(relay_mesh_scenario(seed=0), journal_dir=tmp_path)
    assert report.converged
    # The 60%-drop hub link must sit visibly below its healthy twin.
    assert report.scores["hub-a->leaf"] < report.scores["hub-b->leaf"]
