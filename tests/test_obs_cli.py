"""CLI tests for the observability surface: --trace, --metrics, profile."""

import json

import pytest

from repro.cli import main
from repro.io import dumps_setting
from repro.obs import read_trace_jsonl


@pytest.fixture
def example1_files(tmp_path, example1_setting):
    setting_path = tmp_path / "setting.json"
    setting_path.write_text(dumps_setting(example1_setting, indent=2))
    good = tmp_path / "good.txt"
    good.write_text("E(a, b); E(b, c); E(a, c)")
    return setting_path, good


class TestSolveTrace:
    def test_trace_file_is_parseable_and_names_solver(
        self, example1_files, tmp_path, capsys
    ):
        # The PR's acceptance criterion: `solve --trace out.jsonl` writes
        # parseable JSONL whose span tree names the dispatched solver and
        # the per-dependency chase fire counts.
        setting, good = example1_files
        trace_path = tmp_path / "out.jsonl"
        code = main(["solve", str(setting), str(good),
                     "--trace", str(trace_path)])
        assert code == 0

        for line in trace_path.read_text().splitlines():
            json.loads(line)  # every line is standalone JSON
        roots = read_trace_jsonl(trace_path)
        solve_span = roots[0].find("solve")
        assert solve_span.attributes["dispatched"] == "tractable"
        chase_span = roots[0].find("chase")
        assert chase_span.attributes["fires"]  # per-dependency fire counts

    def test_trace_records_np_nodes(self, tmp_path, capsys):
        # On an NP-dispatched setting the trace shows nodes expanded.
        from repro.core.instance import Instance
        from repro.io import dumps_instance
        from repro.reductions.clique import clique_setting, clique_source_instance
        from repro.workloads import cycle_graph

        nodes, edges = cycle_graph(4)
        setting_path = tmp_path / "clique.json"
        setting_path.write_text(dumps_setting(clique_setting()))
        source_path = tmp_path / "source.json"
        source_path.write_text(
            dumps_instance(clique_source_instance(nodes, edges, k=3))
        )
        trace_path = tmp_path / "out.jsonl"
        code = main(["solve", str(setting_path), str(source_path),
                     "--trace", str(trace_path)])
        assert code == 1  # triangle-free cycle: no 3-clique, no solution
        roots = read_trace_jsonl(trace_path)
        search = roots[0].find("valuation-search")
        assert search.counters["nodes"] > 0

    def test_metrics_flag_prints_summary(self, example1_files, capsys):
        setting, good = example1_files
        code = main(["solve", str(setting), str(good), "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics:" in out
        assert "solve.solver = tractable" in out
        assert "solve.duration_ms" in out


class TestCertainAndSyncTrace:
    def test_certain_trace(self, example1_files, tmp_path, capsys):
        setting, good = example1_files
        trace_path = tmp_path / "certain.jsonl"
        code = main(["certain", str(setting), str(good),
                     "--query", "q(x, y) :- H(x, y)",
                     "--trace", str(trace_path), "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        roots = read_trace_jsonl(trace_path)
        assert roots[0].find("certain-answers") is not None
        assert "certain.answers" in out

    def test_sync_trace_spans_per_round(self, example1_files, tmp_path, capsys):
        setting, good = example1_files
        second = tmp_path / "second.txt"
        second.write_text(
            "E(a, b); E(b, c); E(a, c); E(c, d); E(b, d); E(a, d)"
        )
        trace_path = tmp_path / "sync.jsonl"
        code = main(["sync", str(setting), str(good), str(second),
                     "--trace", str(trace_path)])
        assert code == 0
        roots = read_trace_jsonl(trace_path)
        rounds = [root for root in roots if root.name == "sync-round"]
        assert [span.attributes["round"] for span in rounds] == [1, 2]
        assert all(span.find("solve-attempt") is not None for span in rounds)


class TestProfileCommand:
    def test_profile_lists_workloads(self, capsys):
        code = main(["profile", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("genomics", "procurement", "clique"):
            assert name in out

    def test_profile_check_smoke(self, capsys):
        # The suite's smoke invocation of `repro.cli profile --check`.
        code = main(["profile", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "genomics: ok" in out
        assert "clique: ok" in out

    def test_profile_renders_top_spans(self, capsys):
        code = main(["profile", "clique", "--size", "4", "--top", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "method: valuation-search" in out
        assert "spans by self time" in out
        assert "valuation-search" in out

    def test_profile_writes_trace_and_chrome(self, tmp_path, capsys):
        trace_path = tmp_path / "p.jsonl"
        chrome_path = tmp_path / "p.json"
        code = main(["profile", "genomics", "--size", "3",
                     "--trace", str(trace_path), "--chrome", str(chrome_path)])
        assert code == 0
        roots = read_trace_jsonl(trace_path)
        assert roots[0].find("solve") is not None
        document = json.loads(chrome_path.read_text())
        assert document["traceEvents"]

    def test_profile_unknown_workload(self, capsys):
        code = main(["profile", "nonsense"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown workload" in err

    def test_profile_requires_a_selector(self, capsys):
        code = main(["profile"])
        assert code == 2
        assert "workload name is required" in capsys.readouterr().err
