"""Unit tests for homomorphism search."""

from repro.core.atoms import Atom
from repro.core.homomorphism import (
    find_homomorphism,
    find_instance_homomorphism,
    has_homomorphism,
    has_instance_homomorphism,
    iter_homomorphisms,
    iter_instance_homomorphisms,
)
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.terms import Constant, Null, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestConjunctionMatching:
    def test_single_atom(self):
        instance = parse_instance("E(a, b); E(b, c)")
        matches = list(iter_homomorphisms([Atom("E", [x, y])], instance))
        assert len(matches) == 2

    def test_join(self):
        instance = parse_instance("E(a, b); E(b, c); E(c, d)")
        atoms = [Atom("E", [x, y]), Atom("E", [y, z])]
        matches = list(iter_homomorphisms(atoms, instance))
        assert len(matches) == 2  # a-b-c and b-c-d

    def test_repeated_variable(self):
        instance = parse_instance("E(a, a); E(a, b)")
        matches = list(iter_homomorphisms([Atom("E", [x, x])], instance))
        assert len(matches) == 1
        assert matches[0][x] == Constant("a")

    def test_constant_in_atom(self):
        instance = parse_instance("E(a, b); E(b, c)")
        matches = list(iter_homomorphisms([Atom("E", [Constant("a"), y])], instance))
        assert len(matches) == 1
        assert matches[0][y] == Constant("b")

    def test_partial_binding_respected(self):
        instance = parse_instance("E(a, b); E(b, c)")
        matches = list(
            iter_homomorphisms([Atom("E", [x, y])], instance, {x: Constant("b")})
        )
        assert len(matches) == 1
        assert matches[0][y] == Constant("c")

    def test_no_match(self):
        instance = parse_instance("E(a, b)")
        assert find_homomorphism([Atom("F", [x])], instance) is None
        assert not has_homomorphism([Atom("E", [x, x])], instance)

    def test_null_in_atom_matches_exactly(self):
        instance = Instance.from_tuples({"E": [(Null(0), "b")]})
        assert has_homomorphism([Atom("E", [Null(0), y])], instance)
        assert not has_homomorphism([Atom("E", [Null(1), y])], instance)

    def test_variable_can_bind_null(self):
        instance = Instance.from_tuples({"E": [(Null(0), "b")]})
        match = find_homomorphism([Atom("E", [x, y])], instance)
        assert match[x] == Null(0)

    def test_empty_conjunction_yields_identity(self):
        matches = list(iter_homomorphisms([], parse_instance("E(a, b)")))
        assert matches == [{}]

    def test_cross_relation_join(self):
        instance = parse_instance("E(a, b); F(b)")
        atoms = [Atom("E", [x, y]), Atom("F", [y])]
        assert has_homomorphism(atoms, instance)
        atoms = [Atom("E", [x, y]), Atom("F", [x])]
        assert not has_homomorphism(atoms, instance)


class TestInstanceHomomorphism:
    def test_ground_is_containment(self):
        small = parse_instance("E(a, b)")
        big = parse_instance("E(a, b); E(b, c)")
        assert has_instance_homomorphism(small, big)
        assert not has_instance_homomorphism(big, small)

    def test_nulls_map_to_values(self):
        source = Instance.from_tuples({"E": [("a", Null(0))]})
        target = parse_instance("E(a, b)")
        mapping = find_instance_homomorphism(source, target)
        assert mapping == {Null(0): Constant("b")}

    def test_constants_are_fixed(self):
        source = Instance.from_tuples({"E": [("a", Null(0))]})
        target = parse_instance("E(b, c)")
        assert not has_instance_homomorphism(source, target)

    def test_shared_null_consistency(self):
        source = Instance.from_tuples({"E": [("a", Null(0))], "F": [(Null(0),)]})
        target = parse_instance("E(a, b); F(c)")
        assert not has_instance_homomorphism(source, target)
        target2 = parse_instance("E(a, b); F(b)")
        assert has_instance_homomorphism(source, target2)

    def test_null_can_map_to_null(self):
        source = Instance.from_tuples({"E": [("a", Null(0))]})
        target = Instance.from_tuples({"E": [("a", Null(7))]})
        mapping = find_instance_homomorphism(source, target)
        assert mapping == {Null(0): Null(7)}

    def test_fixed_images(self):
        source = Instance.from_tuples({"E": [("a", Null(0))]})
        target = parse_instance("E(a, b); E(a, c)")
        mapping = find_instance_homomorphism(
            source, target, fixed={Null(0): Constant("c")}
        )
        assert mapping == {Null(0): Constant("c")}

    def test_iter_counts_all(self):
        source = Instance.from_tuples({"E": [("a", Null(0))]})
        target = parse_instance("E(a, b); E(a, c)")
        assert len(list(iter_instance_homomorphisms(source, target))) == 2

    def test_empty_source_always_maps(self):
        assert has_instance_homomorphism(Instance(), Instance())
