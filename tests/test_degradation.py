"""End-to-end fault-injection tests for graceful degradation.

Each degraded :class:`~repro.runtime.SolveStatus` is demonstrated through
a full solver entry point — a deadline expiring mid-valuation-search, a
node budget exhausting mid-branching-chase, a sync round cancelled
mid-solve — and every one must surface as a *structured* result (status +
reason + partial stats), never as a raw exception, unless the budget is
strict.  The crash-recovery tests kill a journaled sync session and check
the resumed session converges to the same materialized state as an
uninterrupted run.
"""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.setting import PDESetting
from repro.exceptions import BudgetExceeded, SolverError
from repro.runtime import (
    Budget,
    CancellationToken,
    FaultClock,
    RetryPolicy,
    SessionJournal,
    SolveStatus,
    cancel_after,
    faulty_feed,
    stall_after,
)
from repro.solver import certain_answers, solve
from repro.sync import SyncSession


@pytest.fixture
def valuation_setting() -> PDESetting:
    """Σ_t = ∅, nulls constrained by Σ_ts: dispatches to valuation search."""
    return PDESetting.from_text(
        source={"A": 1, "R": 2},
        target={"T": 2},
        st="A(x) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
    )


@pytest.fixture
def branching_setting() -> PDESetting:
    """An existential target tgd: auto-dispatches to the branching chase."""
    return PDESetting.from_text(
        source={"A": 2, "R": 2},
        target={"T": 2, "U": 2},
        st="A(x, q) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
        t="T(x, y) -> U(x, w)",
    )


@pytest.fixture
def registry_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"reg": 2},
        target={"db": 2},
        st="reg(k, v) -> db(k, v)",
        ts="db(k, v) -> reg(k, v)",
        name="registry",
    )


def wide_source(n: int = 6) -> Instance:
    return parse_instance(
        "; ".join(f"A(a{i})" for i in range(n))
        + "; "
        + "; ".join(f"R(a{i}, b{i})" for i in range(n))
    )


class TestDeadlineMidSearch:
    def test_deadline_degrades_valuation_search(self, valuation_setting):
        # The third search node "wedges" (the fault clock jumps an hour),
        # so the deadline fires at the next cooperative checkpoint.
        clock = FaultClock()
        budget = Budget(
            wall_time_s=60.0,
            clock=clock,
            check_interval=1,
            probe=stall_after(clock, kind="node", after=2),
        )
        result = solve(
            valuation_setting, wide_source(), Instance(),
            method="valuation", budget=budget,
        )
        assert not result.decided
        assert result.status is SolveStatus.DEADLINE
        assert not result.exists  # no witness found — not a non-existence proof
        assert "deadline" in result.reason
        # Partial stats still report the work done before the stop.
        assert result.stats["budget_nodes"] >= 2

    def test_strict_deadline_raises(self, valuation_setting):
        clock = FaultClock()
        budget = Budget(
            wall_time_s=60.0,
            clock=clock,
            strict=True,
            check_interval=1,
            probe=stall_after(clock, kind="node", after=2),
        )
        with pytest.raises(BudgetExceeded) as info:
            solve(
                valuation_setting, wide_source(), Instance(),
                method="valuation", budget=budget,
            )
        assert info.value.status is SolveStatus.DEADLINE


class TestNodeBudgetMidChase:
    def test_budget_exhaustion_degrades_branching_chase(self, branching_setting):
        source = parse_instance("A(a, 1); A(b, 2); R(a, c); R(a, d); R(b, e)")
        result = solve(
            branching_setting, source, Instance(),
            budget=Budget(node_cap=1),
        )
        assert result.method == "branching-chase"
        assert not result.decided
        assert result.status is SolveStatus.BUDGET_EXHAUSTED
        assert "node budget" in result.reason
        assert result.stats["budget_nodes"] >= 1

    def test_same_instance_decides_with_enough_budget(self, branching_setting):
        source = parse_instance("A(a, 1); A(b, 2); R(a, c); R(a, d); R(b, e)")
        result = solve(branching_setting, source, Instance(), budget=Budget())
        assert result.decided and result.exists

    def test_strict_budget_still_raises(self, branching_setting):
        source = parse_instance("A(a, 1); A(b, 2); R(a, c); R(a, d); R(b, e)")
        with pytest.raises(SolverError):  # BudgetExceeded ⊂ SolverError
            solve(
                branching_setting, source, Instance(),
                budget=Budget(node_cap=1, strict=True),
            )

    def test_chase_step_cap_degrades_tractable_route(self, registry_setting):
        result = solve(
            registry_setting,
            parse_instance("reg(a, 1); reg(b, 2); reg(c, 3)"),
            Instance(),
            budget=Budget(chase_step_cap=1),
        )
        assert not result.decided
        assert result.status is SolveStatus.BUDGET_EXHAUSTED


class TestCancellation:
    def test_cancellation_degrades_solve(self, valuation_setting):
        token = CancellationToken()
        budget = Budget(
            token=token,
            check_interval=1,
            probe=cancel_after(token, kind="node", after=2),
        )
        result = solve(
            valuation_setting, wide_source(), Instance(),
            method="valuation", budget=budget,
        )
        assert not result.decided
        assert result.status is SolveStatus.CANCELLED
        assert "cancelled" in result.reason

    def test_cancelled_sync_round_leaves_state_unchanged(self, registry_setting):
        session = SyncSession(registry_setting)
        assert session.sync(parse_instance("reg(a, 1)")).ok
        before = session.state()

        token = CancellationToken()
        budget = Budget(
            token=token,
            check_interval=1,
            probe=cancel_after(token, kind="node", after=0),
        )
        outcome = session.sync(parse_instance("reg(a, 1); reg(b, 2)"), budget=budget)
        assert not outcome.ok
        assert outcome.degraded
        assert outcome.status is SolveStatus.CANCELLED
        assert not outcome.changed
        assert session.state() == before
        assert session.rounds == 1  # the cancelled round never committed

    def test_cancellation_is_not_retried(self, registry_setting):
        slept: list[float] = []
        session = SyncSession(
            registry_setting,
            retry=RetryPolicy(max_attempts=5, sleep=slept.append),
        )
        token = CancellationToken()
        budget = Budget(
            token=token,
            check_interval=1,
            probe=cancel_after(token, kind="node", after=0),
        )
        outcome = session.sync(parse_instance("reg(a, 1)"), budget=budget)
        assert outcome.status is SolveStatus.CANCELLED
        assert outcome.attempts == 1  # a directive, not a transient failure
        assert slept == []


class TestCertainAnswersDegradation:
    def test_partial_answers_are_a_sound_under_approximation(
        self, valuation_setting
    ):
        source = wide_source(4)
        query = parse_query("T(x, y)")
        full = certain_answers(valuation_setting, query, source, Instance())
        assert full.decided

        partial = certain_answers(
            valuation_setting, query, source, Instance(),
            budget=Budget(node_cap=3),
        )
        assert not partial.decided
        assert partial.status is SolveStatus.BUDGET_EXHAUSTED
        assert partial.answers <= full.answers


class TestRetryEscalation:
    def test_escalated_retry_turns_exhaustion_into_success(self, valuation_setting):
        slept: list[float] = []
        session = SyncSession(
            valuation_setting,
            retry=RetryPolicy(
                max_attempts=3, escalation=8.0, jitter=0.0, sleep=slept.append
            ),
        )
        snapshot = wide_source(3)
        # node_cap=1 cannot embed three null blocks; the escalated retry can.
        outcome = session.sync(snapshot, budget=Budget(node_cap=1))
        assert outcome.ok
        assert outcome.attempts == 2
        assert len(slept) == 1  # backed off once between the attempts
        assert valuation_setting.is_solution(snapshot, Instance(), session.state())

    def test_gives_up_after_max_attempts(self, valuation_setting):
        slept: list[float] = []
        session = SyncSession(
            valuation_setting,
            retry=RetryPolicy(
                max_attempts=2, escalation=1.0, jitter=0.0, sleep=slept.append
            ),
        )
        outcome = session.sync(wide_source(3), budget=Budget(node_cap=1))
        assert not outcome.ok
        assert outcome.degraded
        assert outcome.status is SolveStatus.BUDGET_EXHAUSTED
        assert outcome.attempts == 2
        assert session.rounds == 0

    def test_deadline_is_not_retried(self, registry_setting):
        # The deadline is an absolute fact shared by all attempts: retrying
        # against an expired clock is futile, so the round returns at once.
        slept: list[float] = []
        clock = FaultClock()
        session = SyncSession(
            registry_setting,
            retry=RetryPolicy(max_attempts=5, sleep=slept.append),
        )
        budget = Budget(wall_time_s=1.0, clock=clock, check_interval=1)
        clock.advance(2.0)
        outcome = session.sync(parse_instance("reg(a, 1)"), budget=budget)
        assert outcome.status is SolveStatus.DEADLINE
        assert outcome.attempts == 1
        assert slept == []

    def test_strict_budget_raise_still_feeds_the_retry_loop(
        self, valuation_setting
    ):
        # Legacy strict budgets raise out of solve(); the session treats the
        # raise as a degraded attempt so the retry policy still applies.
        session = SyncSession(
            valuation_setting,
            retry=RetryPolicy(max_attempts=3, escalation=8.0, jitter=0.0,
                              sleep=lambda _s: None),
        )
        outcome = session.sync(
            wide_source(3), budget=Budget(node_cap=1, strict=True)
        )
        assert outcome.ok
        assert outcome.attempts == 2


class TestFaultyDelivery:
    def test_sync_converges_under_drops_and_duplicates(self, registry_setting):
        # Each snapshot is authoritative, so a session fed a lossy,
        # at-least-once delivery schedule must still converge to the state
        # implied by the last delivered snapshot.
        snapshots = [
            parse_instance("reg(a, 1)"),
            parse_instance("reg(a, 1); reg(b, 2)"),  # dropped
            parse_instance("reg(b, 2); reg(c, 3)"),  # delivered twice
        ]
        faulty = SyncSession(registry_setting)
        for snapshot in faulty_feed(snapshots, drop=[1], duplicate=[2]):
            assert faulty.sync(snapshot).ok

        clean = SyncSession(registry_setting)
        assert clean.sync(snapshots[-1]).ok
        assert faulty.state() == clean.state()


class TestJournalCrashRecovery:
    SNAPSHOTS = [
        "reg(a, 1); reg(b, 2)",
        "reg(a, 1); reg(b, 2); reg(c, 3)",
        "reg(b, 2); reg(c, 3)",  # withdrawal round
    ]

    def test_killed_and_restored_session_matches_uninterrupted_run(
        self, tmp_path, registry_setting
    ):
        journal = SessionJournal(tmp_path / "session.journal")
        session = SyncSession(registry_setting, journal=journal)
        for text in self.SNAPSHOTS[:2]:
            assert session.sync(parse_instance(text)).ok
        killed_state = session.state()
        del session  # the process dies here; only the journal survives

        restored = SyncSession.resume(journal)
        assert restored.rounds == 2
        assert restored.state() == killed_state
        assert restored.sync(parse_instance(self.SNAPSHOTS[2])).ok
        assert restored.rounds == 3

        uninterrupted = SyncSession(registry_setting)
        for text in self.SNAPSHOTS:
            assert uninterrupted.sync(parse_instance(text)).ok
        assert restored.state() == uninterrupted.state()
        assert restored.rounds == uninterrupted.rounds

    def test_resume_tolerates_a_torn_final_append(
        self, tmp_path, registry_setting
    ):
        journal = SessionJournal(tmp_path / "session.journal")
        session = SyncSession(registry_setting, journal=journal)
        for text in self.SNAPSHOTS[:2]:
            assert session.sync(parse_instance(text)).ok
        # The process died mid-append: the final record never committed.
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "commit", "round": 3, "imported"')

        restored = SyncSession.resume(journal)
        assert restored.rounds == 2
        assert restored.state() == session.state()

    def test_resume_preserves_pinned_facts(self, tmp_path, registry_setting):
        journal = SessionJournal(tmp_path / "session.journal")
        pinned = parse_instance("db(own, data)")
        session = SyncSession(registry_setting, pinned=pinned, journal=journal)
        assert session.sync(parse_instance("reg(own, data); reg(a, 1)")).ok

        restored = SyncSession.resume(journal)
        assert restored.pinned == pinned
        assert restored.state() == session.state()
        # The restored session keeps enforcing the pinned facts.
        rejected = restored.sync(parse_instance("reg(a, 1)"))
        assert not rejected.ok and "pinned" in rejected.reason

    def test_degraded_rounds_never_touch_the_journal(
        self, tmp_path, valuation_setting
    ):
        journal = SessionJournal(tmp_path / "session.journal")
        session = SyncSession(valuation_setting, journal=journal)
        assert session.sync(wide_source(1)).ok
        size_before = journal.path.stat().st_size
        outcome = session.sync(wide_source(3), budget=Budget(node_cap=1))
        assert outcome.degraded
        assert journal.path.stat().st_size == size_before
        assert SyncSession.resume(journal).rounds == 1
