"""The repro.netd wire codec: framing, guards, message round trips."""

import struct

import pytest

from repro.core.parser import parse_instance
from repro.exceptions import ProtocolError
from repro.net import Delta, Message, registry_setting
from repro.netd import (
    Frame,
    FrameDecoder,
    FrameKind,
    PROTOCOL_VERSION,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.sync import Stamp


def test_frame_round_trip():
    payload = {"peer": "peer-a", "protocol": PROTOCOL_VERSION}
    data = encode_frame(FrameKind.HELLO, payload)
    frames = FrameDecoder().feed(data)
    assert frames == [Frame(FrameKind.HELLO, payload)]


def test_decoder_reassembles_byte_by_byte():
    data = encode_frame(FrameKind.ACK, {"stamp": [1, 2], "outcome": "applied"})
    decoder = FrameDecoder()
    frames = []
    for index in range(len(data)):
        frames.extend(decoder.feed(data[index:index + 1]))
    assert len(frames) == 1
    assert frames[0].payload["outcome"] == "applied"
    assert decoder.pending() == 0


def test_decoder_splits_coalesced_frames():
    data = encode_frame(FrameKind.HEARTBEAT, {}) + encode_frame(
        FrameKind.BYE, {"reason": "done"}
    )
    frames = FrameDecoder().feed(data)
    assert [frame.kind for frame in frames] == [
        FrameKind.HEARTBEAT, FrameKind.BYE,
    ]


def test_wrong_version_raises():
    data = bytearray(encode_frame(FrameKind.HEARTBEAT, {}))
    data[4] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError, match="version"):
        FrameDecoder().feed(bytes(data))


def test_nonzero_reserved_raises():
    data = bytearray(encode_frame(FrameKind.HEARTBEAT, {}))
    data[6] = 1
    with pytest.raises(ProtocolError, match="reserved"):
        FrameDecoder().feed(bytes(data))


def test_unknown_kind_raises():
    data = bytearray(encode_frame(FrameKind.HEARTBEAT, {}))
    data[5] = 200
    with pytest.raises(ProtocolError, match="unknown frame kind"):
        FrameDecoder().feed(bytes(data))


def test_oversized_announced_length_refused_before_buffering():
    # A hostile length prefix must be refused from the header alone —
    # the decoder never waits for (or buffers) the announced body.
    header = struct.pack("!IBBH", 2 ** 31, PROTOCOL_VERSION, 6, 0)
    decoder = FrameDecoder(max_frame=1024)
    with pytest.raises(ProtocolError, match="ceiling"):
        decoder.feed(header)


def test_oversized_encode_refused():
    with pytest.raises(ProtocolError, match="ceiling"):
        encode_frame(FrameKind.SNAPSHOT, {"blob": "x" * 100}, max_frame=50)


def test_non_object_payload_raises():
    body = b'["not", "an", "object"]'
    data = struct.pack("!IBBH", len(body), PROTOCOL_VERSION, 5, 0) + body
    with pytest.raises(ProtocolError, match="JSON object"):
        FrameDecoder().feed(data)


def test_undecodable_payload_raises():
    body = b"\xff\xfe not json"
    data = struct.pack("!IBBH", len(body), PROTOCOL_VERSION, 5, 0) + body
    with pytest.raises(ProtocolError, match="undecodable"):
        FrameDecoder().feed(data)


def test_snapshot_message_round_trip():
    setting = registry_setting()
    snapshot = parse_instance("reg(a, 1); reg(b, 2)")
    message = Message("origin", "peer-a", Stamp(2, 7), snapshot)
    frames = FrameDecoder().feed(encode_message(message))
    assert frames[0].kind is FrameKind.SNAPSHOT
    decoded = decode_message(frames[0], schema=setting.source_schema)
    assert decoded == message


def test_delta_message_round_trip():
    setting = registry_setting()
    delta = Delta(
        base=Stamp(1, 3),
        added=parse_instance("reg(c, 3)"),
        withdrawn=parse_instance("reg(a, 1)"),
    )
    message = Message("origin", "peer-b", Stamp(1, 4), delta)
    frames = FrameDecoder().feed(encode_message(message))
    assert frames[0].kind is FrameKind.DELTA
    decoded = decode_message(frames[0], schema=setting.source_schema)
    assert decoded == message
    assert decoded.is_delta and decoded.payload.base == Stamp(1, 3)


def test_decode_message_rejects_control_frames():
    frame = Frame(FrameKind.HELLO, {"peer": "x"})
    with pytest.raises(ProtocolError, match="cannot decode"):
        decode_message(frame)


def test_decode_message_rejects_malformed_fields():
    good = FrameDecoder().feed(
        encode_message(
            Message("origin", "peer-a", Stamp(1, 1), parse_instance("reg(a, 1)"))
        )
    )[0]
    for field, value in [
        ("stamp", [1]), ("stamp", "1.1"), ("sender", 3), ("instance", "nope"),
    ]:
        broken = Frame(good.kind, dict(good.payload, **{field: value}))
        with pytest.raises(ProtocolError):
            decode_message(broken)
    missing = dict(good.payload)
    del missing["recipient"]
    with pytest.raises(ProtocolError, match="recipient"):
        decode_message(Frame(good.kind, missing))


def test_schema_validation_surfaces_as_protocol_error():
    setting = registry_setting()
    message = Message(
        "origin", "peer-a", Stamp(1, 1), parse_instance("wrong(a, 1)")
    )
    frames = FrameDecoder().feed(encode_message(message))
    with pytest.raises(ProtocolError, match="undecodable instance"):
        decode_message(frames[0], schema=setting.source_schema)


def test_decoder_counters_accumulate():
    decoder = FrameDecoder()
    data = encode_frame(FrameKind.HEARTBEAT, {}) * 3
    decoder.feed(data)
    assert decoder.frames_decoded == 3
    assert decoder.bytes_decoded == len(data)
