"""Tests for the generic NP valuation-search solver (Theorem 1, Σ_t = ∅)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.solver import (
    ValuationSearch,
    brute_force_exists,
    exists_solution_valuation,
    iter_minimal_solutions,
)


@pytest.fixture
def chain_setting() -> PDESetting:
    """Σ_st introduces nulls; Σ_ts forces them into source values."""
    return PDESetting.from_text(
        source={"A": 1, "R": 2},
        target={"T": 2},
        st="A(x) -> T(x, y)",
        ts="T(x, y) -> R(x, y)",
    )


class TestValuationSolver:
    def test_null_must_map_into_source(self, chain_setting):
        source = parse_instance("A(a); R(a, b)")
        result = exists_solution_valuation(chain_setting, source, Instance())
        assert result.exists
        assert chain_setting.is_solution(source, Instance(), result.solution)

    def test_unsatisfiable_when_no_r_edge(self, chain_setting):
        source = parse_instance("A(a); R(c, d)")
        assert not exists_solution_valuation(chain_setting, source, Instance()).exists

    def test_two_nulls_independent(self, chain_setting):
        source = parse_instance("A(a); A(b); R(a, u); R(b, v)")
        result = exists_solution_valuation(chain_setting, source, Instance())
        assert result.exists

    def test_null_can_stay_fresh_when_unconstrained(self):
        # No Σ_ts: any chase result is already a solution; nulls stay.
        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2},
            st="A(x) -> T(x, y)",
        )
        source = parse_instance("A(a)")
        result = exists_solution_valuation(setting, source, Instance())
        assert result.exists
        assert result.solution.nulls()  # the witness keeps the null as value

    def test_rejects_existential_target_tgds(self):
        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2, "U": 2},
            st="A(x) -> T(x, y)",
            t="T(x, y) -> U(x, w)",  # existential target tgd
        )
        with pytest.raises(SolverError):
            exists_solution_valuation(setting, parse_instance("A(a)"), Instance())

    def test_supports_egds_and_full_target_tgds(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
            t="T(x, y), T(x, y2) -> y = y2",
        )
        source = parse_instance("A(a); R(a, b)")
        result = exists_solution_valuation(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)

    def test_node_budget_enforced(self, chain_setting):
        source = parse_instance(
            "; ".join(f"A(a{i})" for i in range(8))
            + "; "
            + "; ".join(f"R(a{i}, b{i})" for i in range(8))
        )
        with pytest.raises(SolverError):
            exists_solution_valuation(chain_setting, source, Instance(), node_budget=2)

    def test_stats_counters(self, chain_setting):
        source = parse_instance("A(a); R(a, b)")
        result = exists_solution_valuation(chain_setting, source, Instance())
        assert result.stats["null_count"] == 1
        assert result.stats["nodes"] >= 1

    def test_agrees_with_brute_force_example1(self, example1_setting):
        for text in ["E(a, b); E(b, c)", "E(a, a)", "E(a, b); E(b, a)"]:
            source = parse_instance(text)
            fast = exists_solution_valuation(example1_setting, source, Instance()).exists
            slow = brute_force_exists(example1_setting, source, Instance())
            assert fast == slow, text

    def test_agrees_with_brute_force_chain(self, chain_setting):
        cases = [
            ("A(a); R(a, b)", None),
            ("A(a); R(c, d)", None),
            ("A(a); A(c); R(a, b); R(c, c)", None),
        ]
        for text, _ in cases:
            source = parse_instance(text)
            fast = exists_solution_valuation(chain_setting, source, Instance()).exists
            slow = brute_force_exists(chain_setting, source, Instance(), extra_fresh=1)
            assert fast == slow, text

    def test_existing_target_facts_respected(self, chain_setting):
        source = parse_instance("A(a); R(a, b)")
        target = parse_instance("T(q, r)")  # R(q, r) missing from the source
        assert not exists_solution_valuation(chain_setting, source, target).exists

    def test_disjunctive_ts_supported(self):
        setting = PDESetting.from_text(
            source={"A": 1, "R": 1, "B": 1},
            target={"T": 2},
            st="A(x) -> T(x, u)",
            ts="T(x, u) -> (R(u)) | (B(u))",
        )
        source = parse_instance("A(a); B(bval)")
        result = exists_solution_valuation(setting, source, Instance())
        assert result.exists
        assert setting.is_solution(source, Instance(), result.solution)
        # Without any color fact there is no valuation.
        assert not exists_solution_valuation(
            setting, parse_instance("A(a)"), Instance()
        ).exists


class TestMinimalSolutions:
    def test_example1_two_minimal_solutions_input(self, example1_setting):
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        solutions = list(iter_minimal_solutions(example1_setting, source, Instance()))
        # J_can = {H(a, c)} is ground: exactly one minimal solution.
        assert solutions == [parse_instance("H(a, c)")]

    def test_multiple_valuations_multiple_solutions(self, chain_setting):
        source = parse_instance("A(a); R(a, b); R(a, c)")
        solutions = list(iter_minimal_solutions(chain_setting, source, Instance()))
        assert len(solutions) == 2  # T(a, b) and T(a, c)

    def test_deduplication(self):
        # Two J_can facts that collapse to the same valued fact.
        setting = PDESetting.from_text(
            source={"A": 1, "B": 1, "R": 2},
            target={"T": 2},
            st="""
                A(x) -> T(x, y)
                B(x) -> T(x, y)
            """,
            ts="T(x, y) -> R(x, y)",
        )
        source = parse_instance("A(a); B(a); R(a, b)")
        solutions = list(iter_minimal_solutions(setting, source, Instance()))
        assert solutions == [parse_instance("T(a, b)")]

    def test_every_minimal_solution_is_a_solution(self, chain_setting):
        source = parse_instance("A(a); A(b); R(a, u); R(a, w); R(b, v)")
        for solution in iter_minimal_solutions(chain_setting, source, Instance()):
            assert chain_setting.is_solution(source, Instance(), solution)


class TestLemma2SmallSolutions:
    def test_minimal_solutions_bounded_by_j_can(self, chain_setting):
        source = parse_instance("A(a); A(b); R(a, u); R(b, v); R(b, w)")
        search = ValuationSearch(chain_setting, source, Instance())
        bound = len(search.j_can)
        for solution in search.iter_valuations():
            assert len(solution) <= bound
