"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ChaseFailure,
    ChaseNonTermination,
    DependencyError,
    NotWeaklyAcyclicError,
    ParseError,
    ReproError,
    SchemaError,
    SolverError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ParseError,
            SchemaError,
            DependencyError,
            ChaseFailure,
            SolverError,
            NotWeaklyAcyclicError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_library_error(self):
        from repro.core.parser import parse_dependency

        with pytest.raises(ReproError):
            parse_dependency("not a dependency !!!")

    def test_parse_error_context(self):
        error = ParseError("bad token", text="E(x,, y)", position=4)
        assert "position 4" in str(error)
        assert error.position == 4

    def test_parse_error_without_context(self):
        assert str(ParseError("plain message")) == "plain message"

    def test_chase_non_termination_records_steps(self):
        error = ChaseNonTermination(123)
        assert error.steps == 123
        assert "123" in str(error)
