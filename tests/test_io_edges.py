"""Edge-case tests for the io layer and CLI file handling."""

import json

import pytest

from repro.cli import main
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.io import dumps_instance, dumps_setting, loads_instance, loads_setting
from repro.io.serialization import instance_from_dict
from repro.exceptions import ParseError


class TestSerializationErrors:
    def test_unknown_term_encoding_rejected(self):
        with pytest.raises(ParseError):
            instance_from_dict({"E": [[{"mystery": 1}, {"const": "a"}]]})

    def test_schema_enforced_on_load(self):
        from repro.core.schema import Schema
        from repro.exceptions import SchemaError

        payload = dumps_instance(parse_instance("E(a)"))
        with pytest.raises(SchemaError):
            loads_instance(payload, schema=Schema.from_arities({"E": 2}))

    def test_malformed_json_raises_cleanly(self):
        with pytest.raises(json.JSONDecodeError):
            loads_instance("{not json")

    def test_setting_round_trip_preserves_disjuncts(self):
        from repro.reductions import coloring_setting

        restored = loads_setting(dumps_setting(coloring_setting()))
        disjunctive = [d for d in restored.sigma_ts if hasattr(d, "disjuncts")]
        assert len(disjunctive) == 1
        assert len(disjunctive[0].disjuncts) == 6

    def test_indent_parameter(self):
        text = dumps_instance(parse_instance("E(a, b)"), indent=2)
        assert "\n" in text
        assert loads_instance(text) == parse_instance("E(a, b)")


class TestCliFileHandling:
    def test_json_instance_input(self, tmp_path, example1_setting, capsys):
        setting_path = tmp_path / "setting.json"
        setting_path.write_text(dumps_setting(example1_setting))
        source_path = tmp_path / "source.json"
        source_path.write_text(dumps_instance(parse_instance("E(a, a)")))
        code = main(["solve", str(setting_path), str(source_path)])
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_missing_file_raises_file_not_found(self, tmp_path, example1_setting):
        setting_path = tmp_path / "setting.json"
        setting_path.write_text(dumps_setting(example1_setting))
        with pytest.raises(FileNotFoundError):
            main(["solve", str(setting_path), str(tmp_path / "missing.txt")])

    def test_empty_target_file(self, tmp_path, example1_setting, capsys):
        setting_path = tmp_path / "setting.json"
        setting_path.write_text(dumps_setting(example1_setting))
        source_path = tmp_path / "source.txt"
        source_path.write_text("E(a, a)")
        target_path = tmp_path / "target.txt"
        target_path.write_text("# nothing yet\n")
        code = main(["solve", str(setting_path), str(source_path), str(target_path)])
        assert code == 0

    def test_certain_with_target(self, tmp_path, example1_setting, capsys):
        setting_path = tmp_path / "setting.json"
        setting_path.write_text(dumps_setting(example1_setting))
        source_path = tmp_path / "source.txt"
        source_path.write_text("E(a, b); E(b, c); E(a, c)")
        target_path = tmp_path / "target.txt"
        target_path.write_text("H(a, b)")
        code = main(
            [
                "certain",
                str(setting_path),
                str(source_path),
                str(target_path),
                "--query",
                "q(x, y) :- H(x, y)",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # H(a, b) is pinned by the target, hence certain.
        assert "(a, b)" in out
