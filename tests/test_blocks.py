"""Unit tests for block decomposition (Definition 10)."""

from repro.core.blocks import decompose_into_blocks, null_graph
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.terms import Null


def nulls_instance(*rows):
    return Instance.from_tuples({"E": list(rows)})


class TestNullGraph:
    def test_cooccurrence_edges(self):
        instance = nulls_instance((Null(0), Null(1)), (Null(1), Null(2)))
        graph = null_graph(instance)
        assert Null(1) in graph[Null(0)]
        assert Null(2) in graph[Null(1)]
        assert Null(2) not in graph[Null(0)]

    def test_isolated_null_present(self):
        instance = nulls_instance((Null(0), "a"))
        graph = null_graph(instance)
        assert graph == {Null(0): set()}

    def test_ground_instance_empty_graph(self):
        assert null_graph(parse_instance("E(a, b)")) == {}


class TestDecomposition:
    def test_ground_instance_single_ground_block(self):
        blocks = decompose_into_blocks(parse_instance("E(a, b); E(b, c)"))
        assert len(blocks) == 1
        assert blocks[0].is_ground()
        assert len(blocks[0].facts) == 2

    def test_empty_instance_no_blocks(self):
        assert decompose_into_blocks(Instance()) == []

    def test_connected_nulls_one_block(self):
        instance = nulls_instance((Null(0), Null(1)), (Null(1), Null(2)))
        blocks = decompose_into_blocks(instance)
        assert len(blocks) == 1
        assert blocks[0].null_count == 3

    def test_disconnected_nulls_separate_blocks(self):
        instance = nulls_instance((Null(0), "a"), (Null(1), "b"))
        blocks = decompose_into_blocks(instance)
        assert len(blocks) == 2
        assert all(block.null_count == 1 for block in blocks)

    def test_mixed_ground_and_null_blocks(self):
        instance = nulls_instance((Null(0), "a"), ("b", "c"))
        blocks = decompose_into_blocks(instance)
        kinds = sorted(block.is_ground() for block in blocks)
        assert kinds == [False, True]

    def test_blocks_partition_facts(self):
        instance = nulls_instance(
            (Null(0), Null(1)), (Null(2), "a"), ("b", "c"), (Null(0), "d")
        )
        blocks = decompose_into_blocks(instance)
        total = sum(len(block.facts) for block in blocks)
        assert total == len(instance)
        merged = Instance()
        for block in blocks:
            merged.add_all(block.facts)
        assert merged == instance

    def test_chain_through_shared_fact(self):
        # Nulls 0 and 2 are connected through null 1 even though they never
        # co-occur directly.
        instance = Instance.from_tuples(
            {"E": [(Null(0), Null(1))], "F": [(Null(1), Null(2))]}
        )
        blocks = decompose_into_blocks(instance)
        assert len(blocks) == 1
        assert blocks[0].nulls == frozenset({Null(0), Null(1), Null(2)})
