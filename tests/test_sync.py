"""Tests for incremental synchronization sessions."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.runtime import Budget, SolveStatus
from repro.sync import SyncSession
from repro.workloads import generate_genomics_data, genomics_setting


@pytest.fixture
def registry_setting() -> PDESetting:
    return PDESetting.from_text(
        source={"reg": 2},
        target={"db": 2},
        st="reg(k, v) -> db(k, v)",
        ts="db(k, v) -> reg(k, v)",
        name="registry",
    )


class TestBasicRounds:
    def test_first_round_imports_everything(self, registry_setting):
        session = SyncSession(registry_setting)
        outcome = session.sync(parse_instance("reg(a, 1); reg(b, 2)"))
        assert outcome.ok
        assert len(outcome.added) == 2
        assert len(outcome.retracted) == 0
        assert session.state() == parse_instance("db(a, 1); db(b, 2)")

    def test_idempotent_round(self, registry_setting):
        session = SyncSession(registry_setting)
        source = parse_instance("reg(a, 1)")
        session.sync(source)
        outcome = session.sync(source)
        assert outcome.ok
        assert not outcome.changed

    def test_additions_are_incremental(self, registry_setting):
        session = SyncSession(registry_setting)
        session.sync(parse_instance("reg(a, 1)"))
        outcome = session.sync(parse_instance("reg(a, 1); reg(b, 2)"))
        assert outcome.ok
        assert outcome.added == parse_instance("db(b, 2)")

    def test_withdrawal_retracts_import(self, registry_setting):
        session = SyncSession(registry_setting)
        session.sync(parse_instance("reg(a, 1); reg(b, 2)"))
        outcome = session.sync(parse_instance("reg(a, 1)"))
        assert outcome.ok
        assert outcome.retracted == parse_instance("db(b, 2)")
        assert session.state() == parse_instance("db(a, 1)")

    def test_round_counter(self, registry_setting):
        session = SyncSession(registry_setting)
        session.sync(parse_instance("reg(a, 1)"))
        session.sync(parse_instance("reg(a, 1)"))
        assert session.rounds == 2


class TestPinnedFacts:
    def test_pinned_facts_survive(self, registry_setting):
        pinned = parse_instance("db(own, data)")
        session = SyncSession(registry_setting, pinned=pinned)
        # The source must vouch for the pinned fact, else rejection.
        outcome = session.sync(parse_instance("reg(own, data); reg(a, 1)"))
        assert outcome.ok
        assert session.state().contains_instance(pinned)

    def test_unvouched_pinned_fact_rejects_round(self, registry_setting):
        pinned = parse_instance("db(own, data)")
        session = SyncSession(registry_setting, pinned=pinned)
        outcome = session.sync(parse_instance("reg(a, 1)"))
        assert not outcome.ok
        assert "pinned" in outcome.reason
        # State unchanged on rejection.
        assert session.state() == pinned

    def test_pinned_never_retracted_by_withdrawal(self, registry_setting):
        pinned = parse_instance("db(own, data)")
        session = SyncSession(registry_setting, pinned=pinned)
        session.sync(parse_instance("reg(own, data); reg(a, 1)"))
        outcome = session.sync(parse_instance("reg(own, data)"))
        assert outcome.ok
        assert outcome.retracted == parse_instance("db(a, 1)")
        assert session.state() == pinned


class TestSolutionInvariant:
    def test_state_is_always_a_solution(self, registry_setting):
        session = SyncSession(registry_setting)
        snapshots = [
            "reg(a, 1); reg(b, 2)",
            "reg(a, 1); reg(b, 2); reg(c, 3)",
            "reg(b, 2); reg(c, 3)",
            "reg(c, 3)",
        ]
        for text in snapshots:
            source = parse_instance(text)
            outcome = session.sync(source)
            assert outcome.ok
            assert registry_setting.is_solution(
                source, session.pinned, session.state()
            )

    def test_genomics_session(self):
        setting = genomics_setting()
        session = SyncSession(setting)
        first, _ = generate_genomics_data(proteins=6, seed=1)
        second, _ = generate_genomics_data(proteins=9, seed=1)
        outcome1 = session.sync(first)
        outcome2 = session.sync(second)
        assert outcome1.ok and outcome2.ok
        assert len(outcome2.added) > 0
        assert setting.is_solution(second, Instance(), session.state())

    def test_disjunctive_ts_any_satisfied_disjunct_justifies(self):
        # Σ_ts with a disjunctive head: an imported fact stays justified as
        # long as *some* disjunct holds in the new source, and is retracted
        # only when every disjunct fails.
        setting = PDESetting.from_text(
            source={"reg": 2, "alt": 2},
            target={"db": 2},
            st="reg(k, v) -> db(k, v)",
            ts="db(k, v) -> (reg(k, v)) | (alt(k, v))",
            name="mirrored-registry",
        )
        session = SyncSession(setting)
        first = session.sync(parse_instance("reg(a, 1); reg(b, 2)"))
        assert first.ok
        assert session.state() == parse_instance("db(a, 1); db(b, 2)")

        # reg withdraws both rows, but alt still vouches for (a, 1): only
        # db(b, 2) loses its justification.
        second = session.sync(parse_instance("alt(a, 1)"))
        assert second.ok
        assert second.retracted == parse_instance("db(b, 2)")
        assert session.state() == parse_instance("db(a, 1)")

        # Now neither disjunct vouches for (a, 1) either.
        third = session.sync(parse_instance("alt(z, 9)"))
        assert third.ok
        assert third.retracted == parse_instance("db(a, 1)")
        assert session.state() == Instance(schema=setting.target_schema)

    def test_budget_exhausted_round_degrades(self, registry_setting):
        session = SyncSession(registry_setting)
        assert session.sync(parse_instance("reg(a, 1)")).ok
        before = session.state()
        outcome = session.sync(
            parse_instance("reg(a, 1); reg(b, 2); reg(c, 3)"),
            budget=Budget(chase_step_cap=1),
        )
        assert not outcome.ok
        assert outcome.degraded
        assert outcome.status is SolveStatus.BUDGET_EXHAUSTED
        assert session.state() == before
        assert session.rounds == 1

    def test_incremental_matches_from_scratch(self, registry_setting):
        from repro.solver import solve

        session = SyncSession(registry_setting)
        session.sync(parse_instance("reg(a, 1)"))
        session.sync(parse_instance("reg(a, 1); reg(b, 2)"))
        fresh = solve(
            registry_setting,
            parse_instance("reg(a, 1); reg(b, 2)"),
            Instance(),
        ).solution
        assert session.state() == fresh


class TestResumeWithRetractions:
    def test_resume_after_a_retraction_round(self, tmp_path, registry_setting):
        # The last committed round withdrew facts; the resumed session must
        # reproduce the post-retraction state, not resurrect the imports.
        from repro.runtime import SessionJournal

        journal = SessionJournal(tmp_path / "session.journal")
        session = SyncSession(registry_setting, journal=journal)
        assert session.sync(parse_instance("reg(a, 1); reg(b, 2)")).ok
        outcome = session.sync(parse_instance("reg(b, 2)"))  # a withdrawn
        assert outcome.ok
        assert outcome.retracted == parse_instance("db(a, 1)")
        killed_state = session.state()
        del session

        restored = SyncSession.resume(journal)
        assert restored.state() == killed_state
        assert restored.state() == parse_instance("db(b, 2)")

    def test_resumed_session_retracts_pending_withdrawals(
        self, tmp_path, registry_setting
    ):
        # The withdrawal arrives only *after* the crash: the resumed
        # session must still honor it against its re-imported facts.
        from repro.runtime import SessionJournal

        journal = SessionJournal(tmp_path / "session.journal")
        session = SyncSession(registry_setting, journal=journal)
        assert session.sync(parse_instance("reg(a, 1); reg(b, 2)")).ok
        del session

        restored = SyncSession.resume(journal)
        outcome = restored.sync(parse_instance("reg(b, 2)"))
        assert outcome.ok
        assert outcome.retracted == parse_instance("db(a, 1)")
        assert restored.state() == parse_instance("db(b, 2)")

    def test_stamped_retraction_round_resumes_with_watermark(
        self, tmp_path, registry_setting
    ):
        # Retraction + stamp in the same committed round: both survive.
        from repro.runtime import SessionJournal
        from repro.sync import Stamp

        journal = SessionJournal(tmp_path / "session.journal")
        session = SyncSession(registry_setting, journal=journal)
        assert session.sync(
            parse_instance("reg(a, 1); reg(b, 2)"), stamp=Stamp(1, 1)
        ).ok
        assert session.sync(parse_instance("reg(b, 2)"), stamp=Stamp(1, 2)).ok
        del session

        restored = SyncSession.resume(journal)
        assert restored.last_stamp == Stamp(1, 2)
        assert restored.state() == parse_instance("db(b, 2)")
        # Redelivering the pre-retraction snapshot must not resurrect a.
        assert restored.sync(
            parse_instance("reg(a, 1); reg(b, 2)"), stamp=Stamp(1, 1)
        ).stale
        assert restored.state() == parse_instance("db(b, 2)")


class TestDeltaRounds:
    """Incremental ``(added, withdrawn)`` rounds via ``sync_delta``."""

    def seeded(self, setting, journal=None) -> "SyncSession":
        from repro.sync import Stamp

        session = SyncSession(setting, journal=journal)
        outcome = session.sync(
            parse_instance("reg(a, 1); reg(b, 2)"), stamp=Stamp(1, 1)
        )
        assert outcome.ok
        return session

    def test_delta_commits_the_same_state_as_the_full_snapshot(
        self, registry_setting
    ):
        from repro.sync import Stamp

        # Patch reg(a,1);reg(b,2) into reg(b,2);reg(c,3) incrementally...
        patched = self.seeded(registry_setting)
        outcome = patched.sync_delta(
            added=parse_instance("reg(c, 3)"),
            withdrawn=parse_instance("reg(a, 1)"),
            base=Stamp(1, 1),
            stamp=Stamp(1, 2),
        )
        assert outcome.ok and outcome.delta and not outcome.chain_broken
        assert outcome.added == parse_instance("db(c, 3)")
        assert outcome.retracted == parse_instance("db(a, 1)")
        # ...and it must equal the full-snapshot round of the same I_t.
        full = self.seeded(registry_setting)
        assert full.sync(
            parse_instance("reg(b, 2); reg(c, 3)"), stamp=Stamp(1, 2)
        ).ok
        assert patched.state() == full.state()
        assert patched.last_stamp == Stamp(1, 2)

    def test_fresh_session_breaks_the_chain(self, registry_setting):
        from repro.sync import DELTA_CHAIN_BROKEN, Stamp

        session = SyncSession(registry_setting)
        outcome = session.sync_delta(
            added=parse_instance("reg(c, 3)"),
            withdrawn=Instance(),
            base=Stamp(1, 1),
            stamp=Stamp(1, 2),
        )
        assert not outcome.ok
        assert outcome.chain_broken and outcome.delta
        assert outcome.reason == DELTA_CHAIN_BROKEN
        assert len(session.state()) == 0
        assert session.last_stamp is None  # nothing committed

    def test_mismatched_base_breaks_the_chain_and_leaves_state_alone(
        self, registry_setting
    ):
        from repro.sync import Stamp

        session = self.seeded(registry_setting)
        before = session.state()
        outcome = session.sync_delta(
            added=parse_instance("reg(d, 4)"),
            withdrawn=Instance(),
            base=Stamp(1, 2),  # watermark is 1.1: the 1.2 delta was missed
            stamp=Stamp(1, 3),
        )
        assert outcome.chain_broken
        assert session.state() == before
        assert session.last_stamp == Stamp(1, 1)

    def test_full_snapshot_repairs_a_broken_chain(self, registry_setting):
        from repro.sync import Stamp

        session = self.seeded(registry_setting)
        assert session.sync_delta(
            added=Instance(), withdrawn=Instance(),
            base=Stamp(1, 2), stamp=Stamp(1, 3),
        ).chain_broken
        # The sender's fallback: a full snapshot at the latest stamp...
        assert session.sync(
            parse_instance("reg(b, 2); reg(c, 3)"), stamp=Stamp(1, 3)
        ).ok
        # ...after which the next delta chains from it again.
        outcome = session.sync_delta(
            added=parse_instance("reg(d, 4)"),
            withdrawn=parse_instance("reg(b, 2)"),
            base=Stamp(1, 3),
            stamp=Stamp(1, 4),
        )
        assert outcome.ok and not outcome.chain_broken
        assert session.state() == parse_instance("db(c, 3); db(d, 4)")

    def test_stale_delta_is_a_no_op_before_any_chain_check(
        self, registry_setting
    ):
        from repro.sync import Stamp

        session = self.seeded(registry_setting)
        before = session.state()
        # Redelivered delta at the watermark, with a base that would break
        # the chain: staleness must win (redelivery is always harmless).
        outcome = session.sync_delta(
            added=parse_instance("reg(z, 9)"),
            withdrawn=Instance(),
            base=Stamp(1, 7),
            stamp=Stamp(1, 1),
        )
        assert outcome.ok and outcome.stale and outcome.delta
        assert not outcome.chain_broken
        assert session.state() == before
        assert session.rounds == 1

    def test_resume_restores_the_delta_base(self, tmp_path, registry_setting):
        from repro.runtime import SessionJournal
        from repro.sync import Stamp

        journal = SessionJournal(tmp_path / "session.journal")
        session = self.seeded(registry_setting, journal=journal)
        del session

        restored = SyncSession.resume(journal)
        outcome = restored.sync_delta(
            added=parse_instance("reg(c, 3)"),
            withdrawn=parse_instance("reg(a, 1)"),
            base=Stamp(1, 1),
            stamp=Stamp(1, 2),
        )
        assert outcome.ok and not outcome.chain_broken
        assert restored.state() == parse_instance("db(b, 2); db(c, 3)")

    def test_legacy_journal_without_source_breaks_then_recovers(
        self, tmp_path, registry_setting
    ):
        import json

        from repro.runtime import SessionJournal
        from repro.sync import Stamp

        path = tmp_path / "session.journal"
        session = self.seeded(registry_setting, journal=SessionJournal(path))
        del session
        # A journal written before delta support has no retained source.
        lines = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            record.pop("source", None)
            lines.append(json.dumps(record))
        path.write_text("\n".join(lines) + "\n")

        restored = SyncSession.resume(SessionJournal(path))
        assert restored.last_stamp == Stamp(1, 1)  # watermark survives
        outcome = restored.sync_delta(
            added=parse_instance("reg(c, 3)"),
            withdrawn=Instance(),
            base=Stamp(1, 1),
            stamp=Stamp(1, 2),
        )
        assert outcome.chain_broken  # no base: one full refresh needed
        assert restored.sync(
            parse_instance("reg(a, 1); reg(b, 2); reg(c, 3)"), stamp=Stamp(1, 2)
        ).ok
