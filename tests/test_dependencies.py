"""Unit tests for tgds, egds, and disjunctive tgds."""

import pytest

from repro.core.atoms import Atom
from repro.core.dependencies import EGD, TGD, DisjunctiveTGD
from repro.core.parser import parse_dependency
from repro.core.schema import Schema
from repro.core.terms import Variable
from repro.exceptions import DependencyError, SchemaError

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestTGD:
    def test_existential_variables(self):
        tgd = parse_dependency("E(x, y) -> H(x, z)")
        assert tgd.existential_variables() == {z}
        assert tgd.frontier_variables() == {x}

    def test_body_and_head_variables(self):
        tgd = parse_dependency("E(x, y) -> H(x, z)")
        assert tgd.body_variables() == {x, y}
        assert tgd.head_variables() == {x, z}

    def test_empty_body_rejected(self):
        with pytest.raises(DependencyError):
            TGD([], [Atom("H", [x])])

    def test_empty_head_rejected(self):
        with pytest.raises(DependencyError):
            TGD([Atom("E", [x])], [])

    def test_full_detection(self):
        assert parse_dependency("E(x, y) -> H(y, x)").is_full()
        assert not parse_dependency("E(x, y) -> H(x, z)").is_full()

    def test_lav_detection(self):
        assert parse_dependency("H(x, y) -> E(x, y)").is_lav()
        assert parse_dependency("H(x, y) -> E(x, z), E(z, y)").is_lav()
        # Repeated variable in the single body atom: not LAV.
        assert not parse_dependency("H(x, x) -> E(x, x)").is_lav()
        # Two body atoms: not LAV.
        assert not parse_dependency("H(x, y), H(y, z) -> E(x, z)").is_lav()

    def test_gav_detection(self):
        assert parse_dependency("E(x, z), E(z, y) -> H(x, y)").is_gav()
        assert not parse_dependency("E(x, y) -> H(x, z)").is_gav()
        assert not parse_dependency("E(x, y) -> H(x, y), H(y, x)").is_gav()

    def test_validate_schemas(self):
        tgd = parse_dependency("E(x, y) -> H(x, y)")
        tgd.validate(Schema.from_arities({"E": 2}), Schema.from_arities({"H": 2}))
        with pytest.raises(SchemaError):
            tgd.validate(Schema.from_arities({"H": 2}), Schema.from_arities({"E": 2}))

    def test_validate_arity(self):
        tgd = parse_dependency("E(x, y) -> H(x, y)")
        with pytest.raises(SchemaError):
            tgd.validate(Schema.from_arities({"E": 3}), Schema.from_arities({"H": 2}))

    def test_str_shows_existentials(self):
        tgd = parse_dependency("E(x, y) -> H(x, z)")
        assert "∃z" in str(tgd)

    def test_equality(self):
        first = parse_dependency("E(x, y) -> H(x, y)")
        second = parse_dependency("E(x, y) -> H(x, y)")
        assert first == second


class TestEGD:
    def test_parse_and_fields(self):
        egd = parse_dependency("P(x, z, y, w), P(x, z2, y2, w2) -> z = z2")
        assert isinstance(egd, EGD)
        assert egd.left == z
        assert egd.right == Variable("z2")

    def test_variables_must_occur_in_body(self):
        with pytest.raises(DependencyError):
            EGD([Atom("P", [x, y])], x, w)

    def test_empty_body_rejected(self):
        with pytest.raises(DependencyError):
            EGD([], x, x)

    def test_validate(self):
        egd = parse_dependency("P(x, y), P(x, y2) -> y = y2")
        egd.validate(Schema.from_arities({"P": 2}))
        with pytest.raises(SchemaError):
            egd.validate(Schema.from_arities({"Q": 2}))

    def test_str(self):
        egd = parse_dependency("P(x, y), P(x, y2) -> y = y2")
        assert str(egd) == "P(x, y), P(x, y2) -> y = y2"


class TestDisjunctiveTGD:
    def test_parse(self):
        dep = parse_dependency("E(x, y) -> (R(x), B(y)) | (B(x), R(y))")
        assert isinstance(dep, DisjunctiveTGD)
        assert len(dep.disjuncts) == 2

    def test_existential_variables(self):
        dep = parse_dependency("E(x, y) -> (R(u)) | (B(u))")
        assert dep.existential_variables() == {Variable("u")}

    def test_as_tgds(self):
        dep = parse_dependency("E(x, y) -> (R(x)) | (B(y))")
        tgds = dep.as_tgds()
        assert len(tgds) == 2
        assert all(isinstance(t, TGD) for t in tgds)
        assert tgds[0].head[0].relation == "R"

    def test_empty_disjunct_rejected(self):
        with pytest.raises(DependencyError):
            DisjunctiveTGD([Atom("E", [x, y])], [[]])

    def test_no_disjuncts_rejected(self):
        with pytest.raises(DependencyError):
            DisjunctiveTGD([Atom("E", [x, y])], [])

    def test_validate(self):
        dep = parse_dependency("Ep(x, y) -> (R(x)) | (B(y))")
        dep.validate(
            Schema.from_arities({"Ep": 2}),
            Schema.from_arities({"R": 1, "B": 1}),
        )
        with pytest.raises(SchemaError):
            dep.validate(
                Schema.from_arities({"Ep": 2}),
                Schema.from_arities({"R": 1}),
            )
