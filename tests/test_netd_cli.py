"""The ``serve`` / ``connect`` CLI front door, including real signals.

The daemon side runs as a genuine subprocess so SIGTERM (graceful drain)
and SIGKILL (crash, journal resume on restart) exercise the same paths
an operator's ``kill`` would.  The publisher side runs in-process via
:func:`repro.cli.main` — it needs no signal handling, and in-process is
faster and gives capsys the output.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.io import dumps_setting
from repro.net import registry_setting


@pytest.fixture
def registry_files(tmp_path):
    setting = tmp_path / "setting.json"
    setting.write_text(dumps_setting(registry_setting(), indent=2))
    snapshots = []
    for index, text in enumerate(
        ["reg(a, 1)", "reg(a, 1); reg(b, 2)", "reg(b, 2); reg(c, 3)"]
    ):
        path = tmp_path / f"snap{index + 1}.txt"
        path.write_text(text)
        snapshots.append(path)
    return setting, snapshots


def _spawn_serve(setting, journal_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.setdefault("PYTHONUNBUFFERED", "1")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(setting),
            "--peers", "peer-a", "--listen", "127.0.0.1:0",
            "--journal-dir", str(journal_dir), *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd="/root/repo",
    )
    lines = []
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"serve exited early (rc={process.poll()}): {''.join(lines)}"
            )
        lines.append(line)
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip(), lines
    process.kill()
    raise AssertionError(f"serve never announced its address: {''.join(lines)}")


def _connect(address, setting, snapshots, *extra):
    return main(
        [
            "connect", address, str(setting), *map(str, snapshots),
            "--peer", "peer-a", *extra,
        ]
    )


def test_serve_connect_round_trip_then_sigterm_drains(
    registry_files, tmp_path, capsys
):
    setting, snapshots = registry_files
    process, address, _ = _spawn_serve(setting, tmp_path / "journals")
    try:
        code = _connect(address, setting, snapshots, "--delta")
        out = capsys.readouterr().out
        assert code == 0
        assert out.count(": applied") == 3
    finally:
        process.send_signal(signal.SIGTERM)
        remainder, _ = process.communicate(timeout=30)
    assert process.returncode == 0
    assert "draining..." in remainder
    assert "stopped (drained)" in remainder


def test_sigkill_then_restart_resumes_from_journal(
    registry_files, tmp_path, capsys
):
    setting, snapshots = registry_files
    journals = tmp_path / "journals"
    process, address, _ = _spawn_serve(setting, journals)
    try:
        assert _connect(address, setting, snapshots) == 0
        capsys.readouterr()
    finally:
        process.kill()  # SIGKILL: no drain, no goodbye — only the journal
        process.communicate(timeout=30)

    process, address, lines = _spawn_serve(setting, journals)
    try:
        assert any("resumed peer-a at stamp 1.3" in line for line in lines)
        # Replaying the same rounds is a stale no-op, then new work applies.
        assert _connect(address, setting, snapshots) == 0
        assert capsys.readouterr().out.count(": stale") == 3
        assert _connect(address, setting, snapshots[:1], "--epoch", "2") == 0
        assert ": applied" in capsys.readouterr().out
    finally:
        process.send_signal(signal.SIGTERM)
        remainder, _ = process.communicate(timeout=30)
    assert process.returncode == 0
    assert "stopped (drained)" in remainder


def test_bad_addresses_are_usage_errors(registry_files, capsys):
    setting, snapshots = registry_files
    assert main(["serve", str(setting), "--peers", "peer-a",
                 "--listen", "nonsense"]) == 2
    assert _connect("nonsense", setting, snapshots[:1]) == 2
    err = capsys.readouterr().err
    assert "neither HOST:PORT nor unix:PATH" in err


def test_connect_unreachable_daemon_exits_degraded(registry_files, capsys):
    setting, snapshots = registry_files
    code = _connect("127.0.0.1:1", setting, snapshots[:1])
    assert code == 4  # EXIT_DEGRADED: unreachable, not a protocol rejection
    assert "cannot reach daemon" in capsys.readouterr().err
