"""Smoke test: the fixture self-check script passes on the shipped tree.

``scripts/selfcheck.py`` lints every example setting, every example
scenario, and every registered scenario (both transfer modes); running it
here means a rule change that breaks a shipped fixture — or a fixture
change that introduces a finding — fails the suite, not just CI.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "selfcheck.py"


def _load_selfcheck():
    spec = importlib.util.spec_from_file_location("selfcheck", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_selfcheck_script_exists():
    assert SCRIPT.exists()


def test_all_shipped_fixtures_are_lint_clean(capsys):
    module = _load_selfcheck()
    failures = module.run_selfcheck(quiet=True)
    assert failures == 0, capsys.readouterr().out


def test_selfcheck_main_exit_code():
    module = _load_selfcheck()
    assert module.main(["-q"]) == 0
