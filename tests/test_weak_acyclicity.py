"""Unit tests for weak acyclicity (Definition 5)."""

import pytest

from repro.core.parser import parse_dependencies, parse_dependency
from repro.core.weak_acyclicity import (
    build_position_graph,
    is_weakly_acyclic,
)


class TestPositionGraph:
    def test_regular_edges(self):
        graph = build_position_graph([parse_dependency("E(x, y) -> H(y, x)")])
        assert ("H", 0) in graph.regular[("E", 1)]
        assert ("H", 1) in graph.regular[("E", 0)]
        assert not graph.special_edges()

    def test_special_edges(self):
        graph = build_position_graph([parse_dependency("E(x, y) -> H(x, w)")])
        assert (("E", 0), ("H", 1)) in graph.special_edges()

    def test_body_only_variable_contributes_nothing(self):
        graph = build_position_graph([parse_dependency("E(x, y) -> H(x, x)")])
        assert ("E", 1) not in graph.regular

    def test_nodes_cover_all_positions(self):
        graph = build_position_graph([parse_dependency("E(x, y) -> H(x, w)")])
        assert graph.nodes == frozenset({("E", 0), ("E", 1), ("H", 0), ("H", 1)})

    def test_edge_count(self):
        graph = build_position_graph([parse_dependency("E(x, y) -> H(x, w)")])
        # regular (E,0)->(H,0); special (E,0)->(H,1)
        assert graph.edge_count() == 2

    def test_both_edge_kinds_between_same_pair(self):
        # x lands in (H,0); w existential also in (H,0) via second atom.
        graph = build_position_graph(
            [parse_dependency("E(x, y) -> H(x, x), H(w, w)")]
        )
        assert ("H", 0) in graph.regular[("E", 0)]
        assert ("H", 0) in graph.special.get(("E", 0), set())


class TestWeakAcyclicity:
    def test_full_tgds_always_weakly_acyclic(self):
        tgds = parse_dependencies(
            """
            E(x, y) -> H(y, x)
            H(x, y), H(y, z) -> H(x, z)
            """
        )
        assert is_weakly_acyclic(tgds)

    def test_self_special_loop_not_weakly_acyclic(self):
        assert not is_weakly_acyclic([parse_dependency("H(x, y) -> H(y, z)")])

    def test_one_shot_existential_weakly_acyclic(self):
        # H(x, y) -> ∃z H(x, z): the special edge (H,0)->(H,1) lies on no
        # cycle, so the set is weakly acyclic.
        assert is_weakly_acyclic([parse_dependency("H(x, y) -> H(x, z)")])

    def test_two_tgd_special_cycle(self):
        tgds = parse_dependencies(
            """
            A(x) -> B(x, w)
            B(x, y) -> A(y)
            """
        )
        assert not is_weakly_acyclic(tgds)

    def test_acyclic_inclusion_dependencies(self):
        tgds = parse_dependencies(
            """
            A(x, y) -> B(x, y)
            B(x, y) -> C(x, w)
            """
        )
        assert is_weakly_acyclic(tgds)

    def test_regular_cycle_alone_is_fine(self):
        # A pure regular cycle (copy back and forth) has no special edge.
        tgds = parse_dependencies(
            """
            A(x, y) -> B(x, y)
            B(x, y) -> A(x, y)
            """
        )
        assert is_weakly_acyclic(tgds)

    def test_empty_set(self):
        assert is_weakly_acyclic([])

    def test_special_edge_reaching_back_through_regular_path(self):
        # special: (A,0) -> (B,1); regular path: (B,1) -> (A,0). Cycle
        # through a special edge => not weakly acyclic.
        tgds = parse_dependencies(
            """
            A(x) -> B(x, w)
            B(x, y) -> A(y)
            """
        )
        assert not is_weakly_acyclic(tgds)


class TestPositionRanks:
    def test_full_tgds_rank_zero(self):
        from repro.core.weak_acyclicity import position_ranks

        ranks = position_ranks(parse_dependencies("E(x, y) -> H(y, x)"))
        assert set(ranks.values()) == {0}

    def test_single_existential_rank_one(self):
        from repro.core.weak_acyclicity import position_ranks

        ranks = position_ranks(parse_dependencies("E(x, y) -> H(x, w)"))
        assert ranks[("H", 1)] == 1
        assert ranks[("E", 0)] == 0
        assert ranks[("H", 0)] == 0

    def test_cascaded_existentials_increase_rank(self):
        from repro.core.weak_acyclicity import position_ranks

        ranks = position_ranks(
            parse_dependencies(
                """
                A(x) -> B(x, w)
                B(x, y) -> C(y, v)
                """
            )
        )
        assert ranks[("B", 1)] == 1
        assert ranks[("C", 1)] == 2
        # The copied position inherits rank through the regular edge.
        assert ranks[("C", 0)] == 1

    def test_non_weakly_acyclic_rejected(self):
        from repro.core.weak_acyclicity import position_ranks
        from repro.exceptions import NotWeaklyAcyclicError

        with pytest.raises(NotWeaklyAcyclicError):
            position_ranks(parse_dependencies("H(x, y) -> H(y, z)"))


class TestChaseStepBound:
    def test_bound_covers_actual_chase(self):
        from repro.core.chase import chase
        from repro.core.parser import parse_instance
        from repro.core.weak_acyclicity import chase_step_bound

        tgds = parse_dependencies(
            """
            E(x, y) -> G(x, w)
            G(x, w) -> F(w)
            E(x, y), E(y, z) -> E2(x, z)
            """
        )
        for n in (3, 6, 10):
            instance = parse_instance(
                "; ".join(f"E(a{i}, a{i + 1})" for i in range(n))
            )
            bound = chase_step_bound(tgds, len(instance))
            result = chase(instance, tgds, max_steps=bound)
            assert result.step_count <= bound

    def test_empty_set_bound(self):
        from repro.core.weak_acyclicity import chase_step_bound

        assert chase_step_bound([], 5) >= 1

    def test_bound_is_finite_polynomial_object(self):
        from repro.core.weak_acyclicity import chase_step_bound

        tgds = parse_dependencies("E(x, y) -> H(x, w)")
        small = chase_step_bound(tgds, 10)
        large = chase_step_bound(tgds, 20)
        assert small < large < 10 ** 18  # finite, monotone in instance size
