"""End-to-end network simulation tests.

Convergence per fault class under fixed seeds, byte-for-byte replay
determinism, journal-backed crash/resume mid-simulation, and the
``simulate`` CLI.  A randomized seeded soak test is marked ``slow`` and
excluded from the tier-1 run.
"""

import pytest

from repro.cli import main
from repro.core.parser import parse_instance
from repro.exceptions import SimulationError
from repro.net import (
    Crash,
    Heal,
    NetworkSimulator,
    Partition,
    Restart,
    Scenario,
    crash_scenario,
    genomics_scenario,
    registry_scenario,
    scenario_registry,
)
from repro.net.scenarios import _registry_snapshots, registry_setting
from repro.net.simulator import _states_agree
from repro.runtime import FaultSchedule


def lossy_registry(name: str, faults, events=()) -> Scenario:
    """A registry scenario with explicit per-link schedules and events."""
    peers = ["peer-a", "peer-b", "peer-c"]
    return Scenario(
        name=name,
        description=f"registry under {name} faults",
        setting=registry_setting(),
        snapshots=_registry_snapshots(),
        peers=peers,
        reorder_delay=1.2,  # > interval: reordering really overtakes
        faults={("origin", peer): faults for peer in peers},
        events=list(events),
    )


class TestSingleFaultClasses:
    """One fault class at a time, each under a fixed seed."""

    def test_drop_only_converges(self):
        scenario = lossy_registry(
            "drop-only", FaultSchedule.seeded(seed=11, drop=0.4)
        )
        report = NetworkSimulator(scenario).run()
        assert report.converged, "\n".join(report.log)
        assert report.stats["dropped"] > 0

    def test_duplicate_only_converges(self):
        scenario = lossy_registry(
            "dup-only", FaultSchedule.seeded(seed=12, duplicate=0.5)
        )
        report = NetworkSimulator(scenario).run()
        assert report.converged, "\n".join(report.log)
        assert report.stats["duplicated"] > 0
        assert report.stats["stale"] >= report.stats["duplicated"]

    def test_reorder_only_converges(self):
        scenario = lossy_registry(
            "reorder-only", FaultSchedule.seeded(seed=13, reorder=0.5)
        )
        report = NetworkSimulator(scenario).run()
        assert report.converged, "\n".join(report.log)
        assert report.stats["reordered"] > 0
        # An overtaken (older) snapshot arriving late is rejected as stale.
        assert report.stats["stale"] > 0

    def test_partition_and_heal_converges_via_anti_entropy(self):
        # Perfect links isolate the partition effect; the partition spans
        # the final publish, so only anti-entropy can catch peer-c up.
        scenario = lossy_registry(
            "partition", FaultSchedule(),
            events=[
                Partition(3.5, {"origin", "peer-a", "peer-b"}, {"peer-c"}),
                Heal(5.5),
            ],
        )
        report = NetworkSimulator(scenario).run()
        assert report.converged, "\n".join(report.log)
        assert report.stats["partition_dropped"] > 0
        assert report.stats["anti_entropy"] > 0

    def test_unhealed_partition_excludes_the_isolated_peer(self):
        scenario = lossy_registry(
            "partitioned-forever", FaultSchedule(),
            events=[Partition(1.5, {"origin", "peer-a", "peer-b"}, {"peer-c"})],
        )
        report = NetworkSimulator(scenario).run()
        assert report.converged  # the reachable majority still converges
        assert report.convergence.unreachable == ["peer-c"]
        assert "peer-c" not in report.convergence.peers


class TestShippedScenarios:
    @pytest.mark.parametrize("name", sorted(scenario_registry()))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_scenario_converges(self, name, seed, tmp_path):
        scenario = scenario_registry()[name](seed)
        report = NetworkSimulator(scenario, journal_dir=tmp_path).run()
        assert report.converged, "\n".join(report.log)


class TestDeterminism:
    def test_same_seed_replays_byte_for_byte(self):
        first = NetworkSimulator(registry_scenario(7)).run()
        second = NetworkSimulator(registry_scenario(7)).run()
        assert first.log == second.log
        assert first.stats == second.stats
        assert first.final_stamp == second.final_stamp

    def test_different_seeds_take_different_fault_paths(self):
        logs = {
            tuple(NetworkSimulator(registry_scenario(seed)).run().log)
            for seed in range(4)
        }
        assert len(logs) > 1

    def test_genomics_feed_is_seed_deterministic(self):
        a = NetworkSimulator(genomics_scenario(3)).run()
        b = NetworkSimulator(genomics_scenario(3)).run()
        assert a.log == b.log


class TestCrashResume:
    def test_killed_and_resumed_peer_reaches_the_same_converged_state(
        self, tmp_path
    ):
        # The crash scenario kills journal-backed peer-b mid-simulation and
        # restarts it two publishes later; it must converge to the exact
        # state of the run where it never crashed.
        baseline = NetworkSimulator(
            registry_scenario(7), journal_dir=tmp_path / "baseline"
        ).run()
        crashed = NetworkSimulator(
            crash_scenario(7), journal_dir=tmp_path / "crashed"
        ).run()
        assert baseline.converged and crashed.converged
        assert crashed.stats["crash_dropped"] > 0

    def test_restart_resumes_from_the_journal_watermark(self, tmp_path):
        scenario = lossy_registry(
            "crash-watermark", FaultSchedule(),
            events=[Crash(1.2, "peer-b"), Restart(3.2, "peer-b")],
        )
        simulator = NetworkSimulator(scenario, journal_dir=tmp_path)
        report = simulator.run()
        assert report.converged, "\n".join(report.log)
        restart_lines = [line for line in report.log if "restart peer-b" in line]
        # The journal preserved the pre-crash watermark (round 2 = stamp 1.2).
        assert restart_lines == [f"t=003.200 restart peer-b stamp=1.2"]

    def test_without_a_journal_dir_a_temp_dir_is_provisioned(self):
        report = NetworkSimulator(crash_scenario(0)).run()
        assert report.converged, "\n".join(report.log)


class TestDeltaTransfer:
    """Delta publishes: wire savings, fallback, and state identity."""

    def test_delta_run_converges_to_the_snapshot_run_state(self):
        plain = NetworkSimulator(registry_scenario(7))
        delta = NetworkSimulator(registry_scenario(7), deltas=True)
        plain_report, delta_report = plain.run(), delta.run()
        assert plain_report.converged, "\n".join(plain_report.log)
        assert delta_report.converged, "\n".join(delta_report.log)
        assert delta_report.stats["delta_published"] > 0
        for peer in plain.scenario.peers:
            assert _states_agree(
                plain.nodes[peer].state(), delta.nodes[peer].state()
            ), f"{peer} differs with deltas enabled"

    def test_dropped_delta_breaks_the_chain_and_falls_back(self):
        # Perfect links except one scripted drop: publish #2's delta to
        # peer-a is lost, so publish #3's delta (base 1.3) cannot chain
        # from peer-a's 1.2 watermark — the publisher must fall back to a
        # full snapshot for that peer, and only that peer.
        peers = ["peer-a", "peer-b"]
        scenario = Scenario(
            name="delta-break",
            description="one dropped delta forces a snapshot fallback",
            setting=registry_setting(),
            snapshots=_registry_snapshots(),
            peers=peers,
            faults={("origin", "peer-a"): FaultSchedule(drop=[2])},
        )
        simulator = NetworkSimulator(scenario, deltas=True)
        report = simulator.run()
        assert report.converged, "\n".join(report.log)
        assert report.stats["chain_broken"] == 1
        assert report.stats["delta_fallback"] == 1
        assert any("delta-chain-broken" in line for line in report.log)
        assert any("delta-fallback" in line for line in report.log)
        # peer-b's chain never broke.
        assert simulator.nodes["peer-b"].stats["chain_broken"] == 0

    def test_duplicated_and_reordered_deltas_stay_idempotent(self):
        scenario = lossy_registry(
            "delta-dup-reorder",
            FaultSchedule.seeded(seed=5, duplicate=0.4, reorder=0.4),
        )
        report = NetworkSimulator(scenario, deltas=True).run()
        assert report.converged, "\n".join(report.log)
        assert report.stats["duplicated"] > 0
        assert report.stats["reordered"] > 0
        # Redelivered / overtaken deltas replay as stale no-ops.
        assert report.stats["stale"] > 0

    def test_crash_resume_mid_delta_chain(self, tmp_path):
        # The journal retains the delta base with the watermark, so the
        # restarted peer either chains on or falls back — both converge.
        plain = NetworkSimulator(
            crash_scenario(7), journal_dir=tmp_path / "plain"
        )
        delta = NetworkSimulator(
            crash_scenario(7), journal_dir=tmp_path / "delta", deltas=True
        )
        plain_report, delta_report = plain.run(), delta.run()
        assert plain_report.converged and delta_report.converged
        assert delta_report.stats["crash_dropped"] > 0
        for peer in plain.scenario.peers:
            assert _states_agree(
                plain.nodes[peer].state(), delta.nodes[peer].state()
            )

    def test_delta_runs_replay_byte_for_byte(self):
        first = NetworkSimulator(registry_scenario(7), deltas=True).run()
        second = NetworkSimulator(registry_scenario(7), deltas=True).run()
        assert first.log == second.log
        assert first.stats == second.stats


class TestVacuousConvergence:
    def test_all_peers_unreachable_converges_vacuously(self):
        # Every peer partitioned away at quiescence: nothing reachable
        # diverged, so the verdict is converged — flagged vacuous, not a
        # spurious failure.
        scenario = lossy_registry(
            "all-partitioned", FaultSchedule(),
            events=[Partition(1.5, {"origin"}, {"peer-a", "peer-b", "peer-c"})],
        )
        report = NetworkSimulator(scenario).run()
        assert report.converged
        assert report.convergence.vacuous
        assert report.convergence.peers == {}
        assert sorted(report.convergence.unreachable) == [
            "peer-a", "peer-b", "peer-c",
        ]
        assert any(
            "vacuous (no reachable peers)" in line for line in report.log
        )

    def test_reachable_peers_keep_the_verdict_non_vacuous(self):
        report = NetworkSimulator(registry_scenario(0)).run()
        assert report.converged
        assert not report.convergence.vacuous


class TestOracleValidation:
    def test_unsolvable_pinned_facts_raise_a_named_simulation_error(self):
        # A pinned fact no snapshot vouches for makes the fault-free
        # oracle itself refuse the replay; that is a scenario bug and
        # must surface as a SimulationError naming the snapshot, not a
        # bare RuntimeError.
        scenario = Scenario(
            name="bad-pin",
            description="peer-a pins a fact the feed never vouches for",
            setting=registry_setting(),
            snapshots=_registry_snapshots(),
            peers=["peer-a"],
            pinned={"peer-a": parse_instance("db(z, 9)")},
        )
        simulator = NetworkSimulator(scenario)
        with pytest.raises(SimulationError, match="snapshot 0"):
            simulator.run()
        # Deliveries and anti-entropy ran before the oracle check, and
        # both spell the refusal the same way in the event log.
        rejected = [line for line in simulator.log if "-> rejected" in line]
        assert any("deliver" in line for line in rejected)
        assert any("anti-entropy" in line for line in rejected)


class TestJournalDirCleanup:
    def test_owned_temp_dir_is_removed_after_the_run(self):
        simulator = NetworkSimulator(crash_scenario(0))
        assert simulator._owns_journal_dir
        path = simulator.journal_dir
        assert path is not None and path.exists()
        assert simulator.run().converged
        assert not path.exists()

    def test_explicit_journal_dir_is_kept(self, tmp_path):
        simulator = NetworkSimulator(crash_scenario(0), journal_dir=tmp_path)
        assert not simulator._owns_journal_dir
        assert simulator.run().converged
        assert (tmp_path / "peer-b.journal").exists()


@pytest.mark.slow
class TestSoak:
    def test_randomized_seeds_always_converge(self, tmp_path):
        # A seeded sweep over many fault mixes; each run is individually
        # replayable from its printed seed.
        for seed in range(24):
            scenario = crash_scenario(seed)
            report = NetworkSimulator(
                scenario, journal_dir=tmp_path / str(seed)
            ).run()
            assert report.converged, (
                f"seed {seed} diverged:\n" + "\n".join(report.log)
            )

    def test_deltas_and_snapshots_agree_across_seeds(self, tmp_path):
        # Deltas are a pure wire optimization: under every seeded fault
        # mix (including crash/resume), the delta run must reach states
        # identical to the snapshot-only run, peer for peer.
        for seed in range(12):
            plain = NetworkSimulator(
                crash_scenario(seed), journal_dir=tmp_path / f"{seed}-plain"
            )
            delta = NetworkSimulator(
                crash_scenario(seed),
                journal_dir=tmp_path / f"{seed}-delta",
                deltas=True,
            )
            plain_report, delta_report = plain.run(), delta.run()
            assert plain_report.converged and delta_report.converged, (
                f"seed {seed} diverged"
            )
            for peer in plain.scenario.peers:
                if plain.reachable(peer) and delta.reachable(peer):
                    assert _states_agree(
                        plain.nodes[peer].state(), delta.nodes[peer].state()
                    ), f"seed {seed}: {peer} differs with deltas enabled"


class TestSimulateCli:
    def test_registry_seed_7_exits_zero(self, capsys):
        assert main(["simulate", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out

    def test_log_flag_prints_the_event_log(self, capsys):
        assert main(["simulate", "registry", "--seed", "7", "--log"]) == 0
        out = capsys.readouterr().out
        assert "publish stamp=1.1" in out
        assert "quiescent" in out

    def test_crash_scenario_with_journal_dir(self, tmp_path, capsys):
        code = main(
            ["simulate", "crash", "--seed", "3", "--journal-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "peer-b.journal").exists()

    def test_list_prints_the_registry(self, capsys):
        assert main(["simulate", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_registry():
            assert name in out

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["simulate", "nonesuch"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_metrics_flag_prints_net_counters(self, capsys):
        assert main(["simulate", "--seed", "7", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "net.sent" in out

    def test_delta_flag_reports_delta_counters(self, capsys):
        assert main(["simulate", "--seed", "7", "--delta"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "deltas: published=" in out
        assert "facts_sent=" in out
