"""The shipped example settings must lint clean (the CI gate of the repo).

Boundary examples are deliberately NP-hard and annotate themselves with a
``lint_ignore`` key; a regression that surfaces new findings — or that
breaks the suppression mechanism — fails here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze, analyze_text
from repro.cli import main
from repro.workloads import (
    exact_view_setting,
    genomics_setting,
)

SETTINGS_DIR = Path(__file__).resolve().parent.parent / "examples" / "settings"
SETTING_FILES = sorted(SETTINGS_DIR.glob("*.json"))


def test_examples_directory_present():
    assert SETTING_FILES, f"no example settings found under {SETTINGS_DIR}"


@pytest.mark.parametrize("path", SETTING_FILES, ids=lambda p: p.name)
def test_example_setting_lints_clean(path):
    report = analyze_text(path.read_text())
    assert report.exit_code() == 0, [d.render() for d in report]


@pytest.mark.parametrize("path", SETTING_FILES, ids=lambda p: p.name)
def test_boundary_examples_declare_their_suppressions(path):
    # Every lint_ignore entry must actually suppress something — a stale
    # annotation is itself a smell.
    encoded = json.loads(path.read_text())
    report = analyze_text(path.read_text())
    for code in encoded.get("lint_ignore", ()):
        suppressed = dict(report.ignored).get(code, 0)
        assert suppressed > 0, f"{path.name}: lint_ignore lists {code} needlessly"


def test_cli_lints_all_examples_clean(capsys):
    code = main(["lint", *map(str, SETTING_FILES)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert f"{len(SETTING_FILES)} setting(s) checked" in out


class TestBenchmarkFixtureSettings:
    """The settings the benchmarks/examples build programmatically."""

    def test_genomics_setting_clean(self):
        assert analyze(genomics_setting()).clean

    def test_exact_view_setting_clean(self):
        assert analyze(exact_view_setting()).clean
