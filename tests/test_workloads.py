"""Tests for the workload generators."""

import pytest

from repro.core.instance import Instance
from repro.solver import solve
from repro.tractability import classify
from repro.workloads import (
    bipartite_graph,
    complete_graph,
    consistent_pair,
    cycle_graph,
    erdos_renyi,
    exact_view_setting,
    generate_genomics_data,
    genomics_setting,
    path_graph,
    planted_clique,
    random_full_st_setting,
    random_glav_setting,
    random_instance,
    random_lav_setting,
)
from repro.reductions import has_k_clique


class TestGraphGenerators:
    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(10, 0.5, seed=3) == erdos_renyi(10, 0.5, seed=3)
        assert erdos_renyi(10, 0.5, seed=3) != erdos_renyi(10, 0.5, seed=4)

    def test_erdos_renyi_extremes(self):
        _nodes, none = erdos_renyi(6, 0.0, seed=1)
        _nodes, all_edges = erdos_renyi(6, 1.0, seed=1)
        assert none == []
        assert len(all_edges) == 15

    def test_complete_graph(self):
        nodes, edges = complete_graph(5)
        assert len(edges) == 10
        assert has_k_clique(nodes, edges, 5)

    def test_cycle_graph(self):
        nodes, edges = cycle_graph(5)
        assert len(edges) == 5
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path_graph(self):
        nodes, edges = path_graph(4)
        assert len(edges) == 3
        assert not has_k_clique(nodes, edges, 3)

    def test_planted_clique_guarantee(self):
        for seed in range(5):
            nodes, edges = planted_clique(10, 4, 0.1, seed=seed)
            assert has_k_clique(nodes, edges, 4), seed

    def test_bipartite_triangle_free(self):
        nodes, edges = bipartite_graph(4, 4, 0.9, seed=2)
        assert not has_k_clique(nodes, edges, 3)


class TestSettingGenerators:
    def test_lav_settings_in_ctract(self):
        for seed in range(8):
            report = classify(random_lav_setting(seed=seed))
            assert report.in_ctract, seed
            assert report.lav_ts, seed

    def test_full_st_settings_in_ctract(self):
        for seed in range(8):
            report = classify(random_full_st_setting(seed=seed))
            assert report.in_ctract, seed
            assert report.full_st, seed

    def test_glav_settings_valid(self):
        for seed in range(8):
            setting = random_glav_setting(seed=seed)
            assert setting.sigma_st and setting.sigma_ts

    def test_deterministic(self):
        assert str(random_lav_setting(seed=1).sigma_st) == str(
            random_lav_setting(seed=1).sigma_st
        )

    def test_exact_view_setting_semantics(self):
        from repro.core.parser import parse_instance

        setting = exact_view_setting()
        source = parse_instance("Orders(c1, widget); Customers(c1, emea)")
        result = solve(setting, source, Instance())
        assert result.exists
        # The view must contain exactly the joined tuple.
        assert result.solution.count("View") == 1


class TestInstanceGenerators:
    def test_random_instance_shape(self):
        setting = random_lav_setting(seed=0)
        instance = random_instance(setting.source_schema, 5, 4, seed=1)
        for relation in setting.source_schema:
            assert instance.count(relation.name) <= 4

    def test_random_instance_deterministic(self):
        setting = random_lav_setting(seed=0)
        first = random_instance(setting.source_schema, 5, 4, seed=9)
        second = random_instance(setting.source_schema, 5, 4, seed=9)
        assert first == second

    def test_consistent_pair_target_contained_in_ground_chase(self):
        setting = random_lav_setting(seed=2)
        source, target = consistent_pair(setting, seed=2)
        # Target facts are ground (nulls were grounded into source values).
        assert target.is_ground()


class TestGenomicsScenario:
    def test_setting_is_lav_and_tractable(self):
        report = classify(genomics_setting())
        assert report.in_ctract
        assert report.lav_ts

    def test_clean_data_solvable(self):
        setting = genomics_setting()
        source, target = generate_genomics_data(proteins=8, seed=3)
        result = solve(setting, source, target)
        assert result.exists
        assert setting.is_solution(source, target, result.solution)

    def test_stale_data_unsolvable(self):
        setting = genomics_setting()
        source, target = generate_genomics_data(proteins=8, stale_local_facts=2, seed=3)
        assert not solve(setting, source, target).exists

    def test_solution_imports_all_authority_proteins(self):
        setting = genomics_setting()
        source, target = generate_genomics_data(proteins=6, seed=5)
        solution = solve(setting, source, target).solution
        assert solution.count("local_protein") == source.count("protein")

    def test_deterministic(self):
        assert generate_genomics_data(proteins=5, seed=7) == generate_genomics_data(
            proteins=5, seed=7
        )


class TestProcurementScenario:
    def test_setting_outside_ctract(self):
        from repro.workloads.scenarios import procurement_setting

        report = classify(procurement_setting())
        assert not report.in_ctract
        assert report.has_target_constraints

    def test_compliant_data_solvable(self):
        from repro.workloads.scenarios import (
            generate_procurement_data,
            procurement_setting,
        )

        setting = procurement_setting()
        source, target = generate_procurement_data(suppliers=6, seed=4)
        result = solve(setting, source, target)
        assert result.exists
        assert result.method == "valuation-search"
        assert setting.is_solution(source, target, result.solution)

    def test_unaudited_orders_unsolvable(self):
        from repro.workloads.scenarios import (
            generate_procurement_data,
            procurement_setting,
        )

        setting = procurement_setting()
        source, target = generate_procurement_data(
            suppliers=6, unaudited_orders=1, seed=4
        )
        assert not solve(setting, source, target).exists

    def test_batch_key_enforced(self):
        from repro.core.parser import parse_instance
        from repro.workloads.scenarios import procurement_setting

        setting = procurement_setting()
        source = parse_instance("certified(s1, iso9001); audited(s1, 2024)")
        target = parse_instance(
            "order_line(s1, p1, b1); order_line(s1, p1, b2)"
        )
        assert not solve(setting, source, target).exists

    def test_deterministic(self):
        from repro.workloads.scenarios import generate_procurement_data

        assert generate_procurement_data(seed=5) == generate_procurement_data(seed=5)
