"""Tests for the constructive Lemma 2 (minimize_solution)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.solver import solve
from repro.solver.minimize import minimize_solution


@pytest.fixture
def setting() -> PDESetting:
    return PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
    )


class TestMinimizeSolution:
    def test_bloated_solution_shrinks(self, setting):
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        bloated = parse_instance("H(a, b); H(b, c); H(a, c)")
        assert setting.is_solution(source, Instance(), bloated)
        small = minimize_solution(setting, source, Instance(), bloated)
        assert small == parse_instance("H(a, c)")

    def test_result_between_target_and_solution(self, setting):
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        target = parse_instance("H(a, b)")
        bloated = parse_instance("H(a, b); H(b, c); H(a, c)")
        small = minimize_solution(setting, source, target, bloated)
        assert small.contains_instance(target)
        assert bloated.contains_instance(small)
        assert setting.is_solution(source, target, small)

    def test_minimal_solution_is_fixpoint(self, setting):
        source = parse_instance("E(a, a)")
        solution = solve(setting, source, Instance()).solution
        assert minimize_solution(setting, source, Instance(), solution) == solution

    def test_non_solution_rejected(self, setting):
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        with pytest.raises(SolverError):
            minimize_solution(
                setting, source, Instance(), parse_instance("H(a, b)")
            )

    def test_with_target_constraints(self):
        keyed = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
            t="T(x, y), T(x, y2) -> y = y2",
        )
        source = parse_instance("A(a); R(a, b)")
        solution = parse_instance("T(a, b)")
        small = minimize_solution(keyed, source, Instance(), solution)
        assert small == solution

    def test_non_weakly_acyclic_rejected(self):
        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2},
            st="A(x) -> T(x, x)",
            t="T(x, y) -> T(y, z)",
        )
        with pytest.raises(SolverError):
            minimize_solution(
                setting, parse_instance("A(a)"), Instance(), Instance()
            )

    def test_size_bounded_regardless_of_bloat(self, setting):
        """Lemma 2's point: the output size is a function of (I, J), not of
        the input solution's size."""
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        sizes = []
        for extra in (0, 5, 20):
            bloated = parse_instance("H(a, b); H(b, c); H(a, c)")
            for index in range(extra):
                # Extra E-backed H facts bloat the solution arbitrarily.
                bloated.add_all(parse_instance(f"H(a, c)"))
            bloated = bloated.union(parse_instance("H(a, c)"))
            small = minimize_solution(setting, source, Instance(), bloated)
            sizes.append(len(small))
        assert len(set(sizes)) == 1  # identical output size every time
