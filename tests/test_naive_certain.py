"""Tests for the naive-evaluation certain-answer under-approximation."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.setting import PDESetting
from repro.core.terms import Constant
from repro.solver import certain_answers, solve
from repro.solver.naive_certain import naive_certain_answers


class TestSoundness:
    def test_subset_of_exact_on_example1(self, example1_setting):
        query = parse_query("q(x, y) :- H(x, y)")
        for text in ["E(a, a)", "E(a, b); E(b, c); E(a, c)", "E(a, b); E(b, a)"]:
            source = parse_instance(text)
            if not solve(example1_setting, source, Instance()).exists:
                continue
            naive = naive_certain_answers(example1_setting, query, source, Instance())
            exact = certain_answers(example1_setting, query, source, Instance())
            assert naive.answers <= exact.answers, text

    def test_exact_on_full_st_settings(self, example1_setting):
        # Full Σ_st => J_can is ground => naive evaluation is exact here.
        query = parse_query("q(x, y) :- H(x, y)")
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        naive = naive_certain_answers(example1_setting, query, source, Instance())
        exact = certain_answers(example1_setting, query, source, Instance())
        assert naive.answers == exact.answers

    def test_boolean_query_through_nulls_is_sound(self):
        # The boolean query matches J_can only through a null; it is still
        # certain because homomorphic images preserve the match.
        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2},
            st="A(x) -> T(x, y)",
        )
        query = parse_query("T(x, y)")
        source = parse_instance("A(a)")
        naive = naive_certain_answers(setting, query, source, Instance())
        exact = certain_answers(setting, query, source, Instance())
        assert naive.boolean_value is True
        assert exact.boolean_value is True


class TestIncompleteness:
    def test_strictly_weaker_when_ts_forces_nulls(self):
        """Σ_ts forces the null to the unique R-successor, so T(a, b) is
        certain — but J_can only shows T(a, _y), which naive evaluation
        cannot return."""
        setting = PDESetting.from_text(
            source={"A": 1, "R": 2},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            ts="T(x, y) -> R(x, y)",
        )
        query = parse_query("q(x, y) :- T(x, y)")
        source = parse_instance("A(a); R(a, b)")
        naive = naive_certain_answers(setting, query, source, Instance())
        exact = certain_answers(setting, query, source, Instance())
        assert naive.answers == set()
        assert exact.answers == {(Constant("a"), Constant("b"))}
        assert naive.answers < exact.answers


class TestTargetConstraints:
    def test_egd_chase_refines_naive_answers(self):
        # The key egd merges the null with the pinned constant, making the
        # naive answer exact in this case.
        setting = PDESetting.from_text(
            source={"A": 1},
            target={"T": 2},
            st="A(x) -> T(x, y)",
            t="T(x, y), T(x, y2) -> y = y2",
        )
        query = parse_query("q(x, y) :- T(x, y)")
        source = parse_instance("A(a)")
        target = parse_instance("T(a, b)")
        naive = naive_certain_answers(setting, query, source, target)
        assert naive.answers == {(Constant("a"), Constant("b"))}

    def test_failing_egd_chase_reports_no_solutions(self):
        setting = PDESetting.from_text(
            source={"A": 2},
            target={"T": 2},
            st="A(x, y) -> T(x, y)",
            t="T(x, y), T(x, y2) -> y = y2",
        )
        source = parse_instance("A(a, b); A(a, c)")
        query = parse_query("T(x, y)")
        naive = naive_certain_answers(setting, query, source, Instance())
        assert not naive.solutions_exist
        assert naive.boolean_value is True  # vacuous

    def test_polynomial_cost_stats(self, example1_setting):
        query = parse_query("H(x, y)")
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        naive = naive_certain_answers(example1_setting, query, source, Instance())
        assert naive.stats["j_can_size"] >= 1
        assert naive.stats["sound_if_solvable"] is True
