"""Tests for the Figure 3 ExistsSolution algorithm (Theorems 4-6)."""

import pytest

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.reductions import clique_setting, clique_source_instance
from repro.solver import (
    canonical_instances,
    exists_solution_tractable,
    exists_solution_valuation,
)
from repro.core.blocks import decompose_into_blocks


class TestCanonicalInstances:
    def test_example1(self, example1_setting, triangle_ish_source):
        j_can, i_can, stats = canonical_instances(
            example1_setting, triangle_ish_source, Instance()
        )
        # Paths of length 2: only a->b->c, so J_can = {H(a, c)}.
        assert j_can == parse_instance("H(a, c)")
        # Σ_ts then requires E(a, c).
        assert i_can == parse_instance("E(a, c)")

    def test_existing_target_included(self, example1_setting):
        source = parse_instance("E(a, b); E(b, c)")
        target = parse_instance("H(q, r)")
        j_can, i_can, _stats = canonical_instances(example1_setting, source, target)
        assert parse_instance("H(q, r)").contains_instance(
            j_can.restrict_to(example1_setting.target_schema)
        ) or target.contains_instance(target)  # target facts survive into J_can
        assert j_can.contains_instance(target)
        # I_can demands both E(a, c) (from chase) and E(q, r) (from J).
        assert i_can.contains_instance(parse_instance("E(a, c); E(q, r)"))

    def test_nulls_propagate_to_i_can(self, marked_example_setting):
        source = parse_instance("S(a, b)")
        j_can, i_can, _stats = canonical_instances(
            marked_example_setting, source, Instance()
        )
        # J_can = {T(a, _y)}; I_can = {S(_w, _y)}: the null _y of J_can
        # reappears in I_can, plus a fresh null _w.
        assert len(j_can.nulls()) == 1
        assert len(i_can.nulls()) == 2
        assert j_can.nulls() <= i_can.nulls()


class TestExistsSolutionTractable:
    def test_example1_all_three_inputs(self, example1_setting):
        no_sol = parse_instance("E(a, b); E(b, c)")
        unique = parse_instance("E(a, a)")
        two_sols = parse_instance("E(a, b); E(b, c); E(a, c)")
        assert not exists_solution_tractable(example1_setting, no_sol, Instance()).exists
        assert exists_solution_tractable(example1_setting, unique, Instance()).exists
        assert exists_solution_tractable(example1_setting, two_sols, Instance()).exists

    def test_witness_is_valid_solution(self, example1_setting, triangle_ish_source):
        result = exists_solution_tractable(
            example1_setting, triangle_ish_source, Instance()
        )
        assert result.exists
        assert example1_setting.is_solution(
            triangle_ish_source, Instance(), result.solution
        )

    def test_witness_with_existentials(self, marked_example_setting):
        source = parse_instance("S(a, b)")
        result = exists_solution_tractable(marked_example_setting, source, Instance())
        assert result.exists
        assert marked_example_setting.is_solution(source, Instance(), result.solution)

    def test_nonempty_target_instance(self, example1_setting):
        source = parse_instance("E(a, b); E(b, c); E(a, c)")
        target = parse_instance("H(a, c)")
        result = exists_solution_tractable(example1_setting, source, target)
        assert result.exists
        assert result.solution.contains_instance(target)

    def test_target_fact_without_backing_fails(self, example1_setting):
        source = parse_instance("E(a, b)")
        target = parse_instance("H(q, r)")  # no E(q, r) in the source
        assert not exists_solution_tractable(example1_setting, source, target).exists

    def test_membership_check_rejects_clique_setting(self):
        setting = clique_setting()
        source = clique_source_instance([1, 2, 3], [(1, 2)], 2)
        with pytest.raises(SolverError):
            exists_solution_tractable(setting, source, Instance())

    def test_membership_check_can_be_disabled(self):
        setting = clique_setting()
        source = clique_source_instance([1, 2, 3], [(1, 2)], 2)
        # Unsound in general, but it must at least run.
        result = exists_solution_tractable(
            setting, source, Instance(), check_membership=False
        )
        assert result.method == "tractable"

    def test_stats_populated(self, example1_setting, triangle_ish_source):
        result = exists_solution_tractable(
            example1_setting, triangle_ish_source, Instance()
        )
        assert "blocks" in result.stats
        assert "max_nulls_per_block" in result.stats

    def test_agrees_with_valuation_search_on_lav(self, example1_setting):
        inputs = [
            "E(a, b); E(b, c)",
            "E(a, a)",
            "E(a, b); E(b, c); E(a, c)",
            "E(a, b); E(b, a)",
            "E(a, b); E(b, c); E(c, a)",
        ]
        for text in inputs:
            source = parse_instance(text)
            tractable = exists_solution_tractable(example1_setting, source, Instance())
            generic = exists_solution_valuation(example1_setting, source, Instance())
            assert tractable.exists == generic.exists, text


class TestTheorem6BlockBound:
    def test_lav_blocks_have_bounded_nulls(self, marked_example_setting):
        # Growing inputs: nulls per I_can block stay constant (Theorem 6).
        for n in (1, 3, 6, 10):
            source = parse_instance("; ".join(f"S(a{i}, b{i})" for i in range(n)))
            _j_can, i_can, _stats = canonical_instances(
                marked_example_setting, source, Instance()
            )
            blocks = decompose_into_blocks(i_can)
            assert blocks, "expected at least one block"
            assert max(block.null_count for block in blocks) <= 2

    def test_full_st_blocks_have_bounded_nulls(self):
        setting = PDESetting.from_text(
            source={"E": 2},
            target={"H": 2},
            st="E(x, y) -> H(y, x)",
            ts="H(x, y), H(y, z) -> E(x, w), E(w, z)",
        )
        for n in (2, 4, 8):
            source = parse_instance("; ".join(f"E(a{i}, a{i + 1})" for i in range(n)))
            _j_can, i_can, _stats = canonical_instances(setting, source, Instance())
            blocks = decompose_into_blocks(i_can)
            if blocks:
                assert max(block.null_count for block in blocks) <= 1
