#!/usr/bin/env python3
"""Quickstart: the paper's Example 1, end to end.

Builds the peer data exchange setting

    Σ_st : E(x, z) ∧ E(z, y) → H(x, y)
    Σ_ts : H(x, y) → E(x, y)

and walks through the three source instances the paper discusses: one with
no solution, one with a unique solution, and one with several solutions.
Finishes with the certain-answer computations below Definition 4.

Run:  python examples/quickstart.py
"""

from repro import Instance, PDESetting, parse_instance, parse_query, solve
from repro.solver import certain_answers, enumerate_solutions


def main() -> None:
    setting = PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
        name="example-1",
    )
    print(f"Setting: {setting}\n")

    cases = {
        "open path (no solution)": "E(a, b); E(b, c)",
        "self-loop (unique solution)": "E(a, a)",
        "closed path (several solutions)": "E(a, b); E(b, c); E(a, c)",
    }
    for label, text in cases.items():
        source = parse_instance(text)
        result = solve(setting, source, Instance())
        print(f"{label}")
        print(f"  I = {source}")
        print(f"  solution exists: {result.exists}  (method: {result.method})")
        if result.exists:
            print(f"  witness J' = {result.solution}")
            minimal = list(enumerate_solutions(setting, source, Instance(), limit=5))
            print(f"  minimal solutions: {[str(s) for s in minimal]}")
        print()

    query = parse_query("H(x, y), H(y, z)")
    print(f"Certain answers of the Boolean query  q = {query}")
    for label, text in [
        ("I = {E(a,a)}", "E(a, a)"),
        ("I = {E(a,b), E(b,c), E(a,c)}", "E(a, b); E(b, c); E(a, c)"),
    ]:
        source = parse_instance(text)
        answer = certain_answers(setting, query, source, Instance())
        print(f"  {label}: certain(q) = {answer.boolean_value}")


if __name__ == "__main__":
    main()
