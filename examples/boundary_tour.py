#!/usr/bin/env python3
"""A tour of the tractability boundary (Section 4).

Walks through the four settings the paper uses to show C_tract is maximal:
the Theorem 3 CLIQUE setting (conditions 2.1/2.2 violated), the target-egd
relaxation, the full-target-tgd relaxation, and the disjunctive-Σ_ts
3-colorability setting — classifying each and solving a small instance.

Run:  python examples/boundary_tour.py
"""

from repro import Instance
from repro.reductions import (
    clique_setting,
    clique_source_instance,
    coloring_setting,
    coloring_source_instance,
    egd_boundary_setting,
    egd_boundary_source_instance,
    full_tgd_boundary_setting,
    full_tgd_boundary_source_instance,
)
from repro.solver import solve
from repro.tractability import classify
from repro.workloads import cycle_graph

TRIANGLE = ([1, 2, 3], [(1, 2), (2, 3), (1, 3)])


def show(setting, source, expected: bool, note: str) -> None:
    report = classify(setting)
    print(f"== {setting.name} ==")
    print(f"   {note}")
    print(
        f"   conditions: 1={report.condition1} 2.1={report.condition2_1} "
        f"2.2={report.condition2_2}; Σ_t nonempty={report.has_target_constraints}; "
        f"disjunctive Σ_ts={report.has_disjunctive_ts}"
    )
    result = solve(setting, source, Instance())
    status = "matches" if result.exists == expected else "MISMATCH"
    print(
        f"   triangle instance: solution={result.exists} "
        f"(expected {expected}, {status}; method {result.method})\n"
    )


def main() -> None:
    nodes, edges = TRIANGLE

    show(
        clique_setting(),
        clique_source_instance(nodes, edges, 3),
        True,
        "Theorem 3: no Σ_t, but conditions 2.1 and 2.2 both fail -> NP-hard",
    )
    show(
        egd_boundary_setting(),
        egd_boundary_source_instance(nodes, edges, 3),
        True,
        "Σ_st/Σ_ts satisfy (1)+(2.1); target egds alone cross the boundary",
    )
    show(
        full_tgd_boundary_setting(),
        full_tgd_boundary_source_instance(nodes, edges, 3),
        True,
        "Σ_st/Σ_ts satisfy (1)+(2.1); full target tgds alone cross the boundary",
    )
    odd_cycle = cycle_graph(5)
    show(
        coloring_setting(),
        coloring_source_instance(*odd_cycle),
        True,
        "no Σ_t, conditions (1)+(2.2) hold; disjunction in Σ_ts crosses "
        "the boundary (3-colorability; C5 is 3-colorable)",
    )


if __name__ == "__main__":
    main()
