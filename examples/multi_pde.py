#!/usr/bin/env python3
"""Multi-PDE: several authoritative sources feeding one target peer.

Two upstream registries (a protein registry and a literature registry)
push into one university database; the university accepts only facts some
registry vouches for.  The paper's Section 2 observation — a multi-PDE is
equivalent to a single merged PDE over the union of the sources — is
demonstrated by solving through the merged setting and re-checking the
witness against every member.

Run:  python examples/multi_pde.py
"""

from repro import Instance, MultiPDESetting, PDESetting, parse_instance, solve


def main() -> None:
    proteins = PDESetting.from_text(
        source={"reg_protein": 2},
        target={"db_protein": 2, "db_paper": 2},
        st="reg_protein(acc, name) -> db_protein(acc, name)",
        ts="db_protein(acc, name) -> reg_protein(acc, name)",
        name="protein-registry",
    )
    papers = PDESetting.from_text(
        source={"lit_paper": 2},
        target={"db_protein": 2, "db_paper": 2},
        st="lit_paper(acc, pmid) -> db_paper(acc, pmid)",
        ts="db_paper(acc, pmid) -> lit_paper(acc, pmid)",
        name="literature-registry",
    )
    multi = MultiPDESetting([proteins, papers], name="university-feeds")
    merged = multi.merge()
    print(f"merged setting: {merged}\n")

    protein_feed = parse_instance("reg_protein(P1, kinase); reg_protein(P2, ligase)")
    paper_feed = parse_instance("lit_paper(P1, PMID100); lit_paper(P2, PMID200)")
    local = parse_instance("db_protein(P1, kinase)")

    union = multi.combine_sources([protein_feed, paper_feed])
    result = solve(merged, union, local)
    print(f"solution exists: {result.exists} via {result.method}")
    print(f"synced database: {result.solution}\n")

    ok = multi.is_solution([protein_feed, paper_feed], local, result.solution)
    print(f"witness verifies against every member setting: {ok}")

    # A local fact neither registry vouches for blocks the whole sync.
    tainted = local.union(parse_instance("db_paper(P9, PMID999)"))
    blocked = solve(merged, union, tainted)
    print(f"with an unvouched local fact, solution exists: {blocked.exists}")


if __name__ == "__main__":
    main()
