#!/usr/bin/env python3
"""Diagnosing failed syncs and minimizing witnesses.

Production-flavored workflow on top of the solver:

1. a sync fails — `explain()` turns the bare "no solution" into an
   actionable certificate (the failing block of `I_can`, or the ground
   target-to-source premise the source refuses to vouch for);
2. the operator repairs the offending facts and re-runs;
3. the resulting witness is minimized with `core()` before being applied,
   so the target ingests no redundant placeholder rows.

Run:  python examples/diagnose_failures.py
"""

from repro import Instance, PDESetting, parse_instance
from repro.core import core
from repro.solver import explain, solve


def main() -> None:
    setting = PDESetting.from_text(
        source={"catalog": 2, "stock": 2},
        target={"listing": 2, "offer": 3},
        st="""
            catalog(sku, title) -> listing(sku, title)
            catalog(sku, title), stock(sku, qty) -> offer(sku, qty, price)
        """,
        ts="""
            listing(sku, title) -> catalog(sku, title)
            offer(sku, qty, price) -> stock(sku, qty)
        """,
        name="storefront-sync",
    )

    source = parse_instance(
        """
        catalog(sku1, 'Espresso Machine')
        catalog(sku2, 'Grinder')
        stock(sku1, 5)
        """
    )

    print("=== attempt 1: target holds a listing the catalog withdrew ===")
    target = parse_instance("listing(sku9, 'Discontinued Kettle')")
    diagnosis = explain(setting, source, target)
    print(f"[{diagnosis.reason}]")
    print(diagnosis.narrative)
    print()

    print("=== attempt 2: repaired target ===")
    repaired = Instance()
    diagnosis = explain(setting, source, repaired)
    print(f"[{diagnosis.reason}]")
    print(diagnosis.narrative)
    witness = diagnosis.details["solution"]
    print(f"raw witness ({len(witness)} facts): {witness}")
    print()

    print("=== minimizing the witness before applying it ===")
    minimized = core(witness, protect=repaired)
    print(f"cored witness ({len(minimized)} facts): {minimized}")
    assert setting.is_solution(source, repaired, minimized)
    print("cored witness verified as a solution.")
    print()

    print("=== the price column stays open (no authority constrains it) ===")
    offers = minimized.facts("offer")
    for fact in offers:
        print(f"  offer row: {fact}   (price {fact.args[2]} is a placeholder)")


if __name__ == "__main__":
    main()
