#!/usr/bin/env python3
"""Theorem 3 live: deciding CLIQUE through peer data exchange.

Encodes "does G have a k-clique?" as the existence-of-solutions problem of
a fixed PDE setting, runs the NP solver on it, and shows the coNP-complete
certain-answers variant with the Boolean query ∃x P(x, x, x, x).

Run:  python examples/clique_reduction.py
"""

import time

from repro import Instance
from repro.reductions import (
    certain_answer_query,
    clique_setting,
    clique_source_instance,
    has_k_clique,
)
from repro.solver import certain_answers, solve
from repro.tractability import classify
from repro.workloads import erdos_renyi, planted_clique


def decide(setting, nodes, edges, k, label: str) -> None:
    source = clique_source_instance(nodes, edges, k)
    started = time.perf_counter()
    result = solve(setting, source, Instance())
    elapsed = (time.perf_counter() - started) * 1000
    oracle = has_k_clique(nodes, edges, k)
    print(
        f"{label}: |V|={len(nodes)}, |E|={len(edges)}, k={k}  ->  "
        f"solution={result.exists} (oracle clique={oracle})  "
        f"[{elapsed:.1f} ms, {result.stats.get('nodes', 0)} search nodes]"
    )
    assert result.exists == oracle


def main() -> None:
    setting = clique_setting()
    report = classify(setting)
    print(f"Setting: {setting}")
    print(f"In C_tract: {report.in_ctract}")
    for violation in report.violations:
        print(f"  - {violation}")
    print()

    print("Existence of solutions == k-clique existence:")
    decide(setting, *planted_clique(8, 4, 0.25, seed=1), 4, "planted clique")
    decide(setting, *erdos_renyi(8, 0.2, seed=2), 4, "sparse random")
    decide(setting, *erdos_renyi(7, 0.9, seed=3), 4, "dense random")
    print()

    print("Certain answers (coNP side): q = ∃x P(x, x, x, x)")
    query = certain_answer_query()
    for label, (nodes, edges), k in [
        ("triangle", ([1, 2, 3], [(1, 2), (2, 3), (1, 3)]), 3),
        ("path", ([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)]), 3),
    ]:
        source = clique_source_instance(nodes, edges, k, draw_from_nodes=True)
        answer = certain_answers(setting, query, source, Instance())
        clique = has_k_clique(nodes, edges, k)
        print(
            f"  {label}: certain(q) = {answer.boolean_value}   "
            f"(k-clique exists: {clique}; the paper: clique iff NOT certain)"
        )


if __name__ == "__main__":
    main()
