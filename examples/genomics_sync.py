#!/usr/bin/env python3
"""The Introduction's motivating scenario: syncing a university database
from an authoritative genomic source (Swiss-Prot-style).

The authority exports proteins, GO annotations, and citations; the
university database accepts new data but *restricts* what it is willing to
receive via target-to-source constraints — it only stores facts the
authority actually vouches for.  The setting is LAV on the
target-to-source side, so it sits inside C_tract and the Figure 3
polynomial algorithm decides every sync instantly.

The script runs three sync rounds:

1. a clean periodic import (solution exists; shows the computed import);
2. an import where the local database holds *stale* facts the authority
   has withdrawn (no solution; the sync must be repaired first);
3. a certain-answers audit: which annotations are guaranteed to be in the
   database after *any* valid sync?

Run:  python examples/genomics_sync.py
"""

from repro import Instance, parse_query, solve
from repro.solver import certain_answers
from repro.workloads import generate_genomics_data, genomics_setting
from repro.tractability import classify


def sync_round(setting, source, target, label: str) -> None:
    print(f"--- {label} ---")
    print(
        f"authority: {source.count('protein')} proteins, "
        f"{source.count('annotation')} annotations, "
        f"{source.count('citation')} citations"
    )
    print(
        f"local db:  {target.count('local_protein')} proteins, "
        f"{target.count('local_annotation')} annotations, "
        f"{target.count('evidence')} evidence rows"
    )
    result = solve(setting, source, target)
    if result.exists:
        imported = len(result.solution) - len(target)
        print(f"sync OK via {result.method}: imports {imported} new facts")
        batches = {
            str(fact.args[2])
            for fact in result.solution.facts("evidence")
        }
        print(f"evidence batches after sync: {sorted(batches)[:4]} ...")
    else:
        print("sync REJECTED: the local database holds facts the authority")
        print("does not vouch for; curators must repair them first.")
    print()


def main() -> None:
    setting = genomics_setting()
    report = classify(setting)
    print(f"Setting: {setting}")
    print(f"C_tract: {report.in_ctract} ({report.subclass()})\n")

    source, target = generate_genomics_data(proteins=25, seed=42)
    sync_round(setting, source, target, "round 1: clean periodic import")

    stale_source, stale_target = generate_genomics_data(
        proteins=25, stale_local_facts=3, seed=42
    )
    sync_round(setting, stale_source, stale_target, "round 2: stale local facts")

    print("--- round 3: certain-answers audit ---")
    query = parse_query("q(acc, term) :- local_annotation(acc, term)")
    audit = certain_answers(setting, query, source, target)
    print(
        f"{len(audit.answers)} (accession, GO-term) pairs are certain to be "
        f"present after any valid sync"
    )
    for row in sorted(audit.answers)[:5]:
        print(f"  {row[0]}  {row[1]}")
    print("  ...")


if __name__ == "__main__":
    main()
