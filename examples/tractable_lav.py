#!/usr/bin/env python3
"""Inside C_tract: the Figure 3 algorithm at work (Corollaries 1 and 2).

Shows the two tractable families the paper highlights — LAV
target-to-source constraints and full source-to-target constraints — and
inspects the machinery of the ExistsSolution algorithm: the canonical
instances J_can and I_can, the block decomposition of I_can, and the
per-block homomorphism tests.  Ends with a small scaling run demonstrating
polynomial behavior.

Run:  python examples/tractable_lav.py
"""

import time

from repro import Instance, PDESetting, parse_instance
from repro.core.blocks import decompose_into_blocks
from repro.solver import canonical_instances, solve
from repro.tractability import classify, marked_positions


def inspect(setting: PDESetting, source, target) -> None:
    j_can, i_can, stats = canonical_instances(setting, source, target)
    print(f"  J_can ({len(j_can)} facts): {j_can}")
    print(f"  I_can ({len(i_can)} facts): {i_can}")
    blocks = decompose_into_blocks(i_can)
    print(f"  blocks of I_can: {len(blocks)}, nulls per block: "
          f"{[block.null_count for block in blocks]}")
    result = solve(setting, source, target)
    print(f"  solution exists: {result.exists} via {result.method}")
    if result.exists:
        print(f"  witness: {result.solution}")
    print()


def main() -> None:
    # Corollary 2: LAV target-to-source constraints.
    lav = PDESetting.from_text(
        source={"emp": 2, "dept": 2},
        target={"roster": 3},
        st="emp(name, dname), dept(dname, city) -> roster(name, dname, badge)",
        ts="roster(name, dname, badge) -> emp(name, dname)",
        name="LAV example",
    )
    print(f"[{lav.name}] marked positions: {sorted(marked_positions(lav.sigma_st))}")
    print(f"classification: {classify(lav).subclass()}")
    source = parse_instance(
        "emp(ada, eng); emp(bob, eng); dept(eng, zurich)"
    )
    inspect(lav, source, Instance())

    # Corollary 1: full source-to-target constraints.
    full = PDESetting.from_text(
        source={"raw": 2},
        target={"clean": 2},
        st="raw(x, y) -> clean(y, x)",
        ts="clean(x, y), clean(y, z) -> raw(z, w), raw(w, x)",
        name="full-Σ_st example",
    )
    print(f"[{full.name}] classification: {classify(full).subclass()}")
    inspect(full, parse_instance("raw(a, b); raw(b, a)"), Instance())

    # Scaling: runtime grows polynomially with the source size.
    print("scaling the LAV example (Figure 3 algorithm):")
    for n in (50, 100, 200, 400):
        facts = "; ".join(f"emp(e{i}, eng)" for i in range(n)) + "; dept(eng, zurich)"
        source = parse_instance(facts)
        started = time.perf_counter()
        result = solve(lav, source, Instance())
        elapsed = (time.perf_counter() - started) * 1000
        print(f"  n={n:4d} employees: exists={result.exists}  {elapsed:7.1f} ms")


if __name__ == "__main__":
    main()
