#!/usr/bin/env python3
"""A tour of certain-answer semantics (Definition 4 and Theorem 2).

One setting, one source, four queries — showing the full spectrum:

1. an answer forced into every solution (certain);
2. an answer destroyed by a choice (not certain, though *possible*);
3. a projection that is certain even though its witnesses differ
   across solutions;
4. vacuous certainty when no solution exists at all.

Also contrasts the exact coNP procedure with the polynomial naive
screen and with per-solution enumeration.

Run:  python examples/certain_answers_tour.py
"""

from repro import Instance, PDESetting, parse_instance, parse_query
from repro.solver import certain_answers, enumerate_solutions, naive_certain_answers


def show(label: str, result) -> None:
    rendered = sorted(
        "(" + ", ".join(str(v) for v in row) + ")" for row in result.answers
    )
    print(f"  {label}: {rendered if rendered else '(none)'}")


def main() -> None:
    setting = PDESetting.from_text(
        source={"person": 1, "speaks": 2},
        target={"assignment": 2},
        st="person(p) -> assignment(p, lang)",
        ts="assignment(p, lang) -> speaks(p, lang)",
        name="translator-assignment",
    )
    source = parse_instance(
        """
        person(ana)      # speaks exactly one language: forced assignment
        person(boris)    # speaks two: the solver must choose
        speaks(ana, pt)
        speaks(boris, de)
        speaks(boris, ru)
        """
    )
    print(f"setting: {setting}")
    print(f"source:  {source}\n")

    print("All minimal solutions:")
    for solution in enumerate_solutions(setting, source, Instance()):
        print(f"  {solution}")
    print()

    full = parse_query("q(p, lang) :- assignment(p, lang)")
    print(f"1/2. certain answers of {full}:")
    exact = certain_answers(setting, full, source, Instance())
    show("exact   ", exact)
    screen = naive_certain_answers(setting, full, source, Instance())
    show("screen  ", screen)
    print("  (ana, pt) is forced; boris's row differs per solution.\n")

    projection = parse_query("q(p) :- assignment(p, lang)")
    print(f"3. certain answers of the projection {projection}:")
    exact = certain_answers(setting, projection, source, Instance())
    show("exact   ", exact)
    print("  both people certainly get SOME assignment.\n")

    print("4. vacuous certainty (no solution exists):")
    impossible = source.union(parse_instance("person(zoe)"))  # speaks nothing
    result = certain_answers(setting, full, impossible, Instance())
    print(f"  solutions exist: {result.solutions_exist}")
    print("  with no solutions, every tuple is vacuously certain — the")
    print("  result object flags it so callers can tell the cases apart.")


if __name__ == "__main__":
    main()
