#!/usr/bin/env python3
"""Data exchange vs peer data exchange: the paper's headline contrast.

Runs the same source-to-target mapping twice:

1. as plain **data exchange** (no Σ_ts): solutions always exist; the chase
   builds a universal solution and naive evaluation answers queries in
   polynomial time;
2. as **peer data exchange** (the target restricts what it accepts):
   solutions can fail to exist, and deciding existence is NP-complete in
   general (Theorem 3) — the dispatcher picks the right procedure per
   setting.

Run:  python examples/data_exchange_baseline.py
"""

from repro import Instance, PDESetting, parse_instance, parse_query, solve
from repro.dataexchange import (
    certain_answers_data_exchange,
    exists_solution_data_exchange,
    universal_solution,
)


def main() -> None:
    mapping_st = "E(x, z), E(z, y) -> H(x, y)"
    inputs = {
        "open path": "E(a, b); E(b, c)",
        "self loop": "E(a, a)",
        "closed path": "E(a, b); E(b, c); E(a, c)",
    }

    print("=== plain data exchange (Σ_ts = ∅): solutions always exist ===")
    de = PDESetting.from_text(source={"E": 2}, target={"H": 2}, st=mapping_st)
    for label, text in inputs.items():
        source = parse_instance(text)
        result = exists_solution_data_exchange(de, source)
        print(f"  {label:12s}: exists={result.exists}  universal={result.solution}")
    print()

    print("=== peer data exchange (target accepts only E-backed edges) ===")
    pde = PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st=mapping_st,
        ts="H(x, y) -> E(x, y)",
    )
    for label, text in inputs.items():
        source = parse_instance(text)
        result = solve(pde, source, Instance())
        witness = result.solution if result.exists else "—"
        print(f"  {label:12s}: exists={result.exists}  witness={witness}")
    print()

    print("=== certain answers side by side ===")
    query = parse_query("q(x, y) :- H(x, y)")
    source = parse_instance("E(a, b); E(b, c); E(a, c); E(c, c)")
    de_answers = certain_answers_data_exchange(de, query, source)
    from repro import certain_answers

    pde_answers = certain_answers(pde, query, source, Instance())
    print(f"  data exchange (naive eval): {sorted(de_answers.answers)}")
    print(f"  peer data exchange:         {sorted(pde_answers.answers)}")
    print()

    print("=== the universal solution, inspected ===")
    with_target_constraints = PDESetting.from_text(
        source={"E": 2},
        target={"H": 2, "G": 2},
        st=mapping_st,
        t="H(x, y) -> G(x, w)",
    )
    universal = universal_solution(
        with_target_constraints, parse_instance("E(a, b); E(b, c)")
    )
    print(f"  chase result: {universal}")
    print("  (the G-column null is a labeled null: any value works)")


if __name__ == "__main__":
    main()
