#!/usr/bin/env python3
"""Periodic synchronization: replaying authority snapshots over time.

Drives a :class:`repro.sync.SyncSession` through four rounds against a
registry whose contents grow, churn, and shrink — showing incremental
imports, withdrawal-driven retractions, and the protection of the target
peer's own pinned data.

Run:  python examples/periodic_sync.py
"""

from repro import PDESetting, parse_instance
from repro.sync import SyncSession


def main() -> None:
    setting = PDESetting.from_text(
        source={"registry": 2},
        target={"mirror": 2},
        st="registry(name, version) -> mirror(name, version)",
        ts="mirror(name, version) -> registry(name, version)",
        name="package-mirror",
    )
    pinned = parse_instance("mirror(localpkg, dev)")
    session = SyncSession(setting, pinned=pinned)

    timeline = [
        ("day 1: initial publish", "registry(localpkg, dev); registry(alpha, 1); registry(beta, 1)"),
        ("day 2: beta upgraded", "registry(localpkg, dev); registry(alpha, 1); registry(beta, 1); registry(beta, 2)"),
        ("day 3: alpha yanked", "registry(localpkg, dev); registry(beta, 1); registry(beta, 2)"),
        ("day 4: quiet day", "registry(localpkg, dev); registry(beta, 1); registry(beta, 2)"),
    ]

    for label, snapshot_text in timeline:
        snapshot = parse_instance(snapshot_text)
        outcome = session.sync(snapshot)
        print(f"--- {label} ---")
        print(f"  ok={outcome.ok}  +{len(outcome.added)}  -{len(outcome.retracted)}")
        if outcome.added:
            print(f"  imported:  {outcome.added}")
        if outcome.retracted:
            print(f"  retracted: {outcome.retracted}")
        print(f"  mirror now: {session.state()}")
        assert setting.is_solution(snapshot, pinned, session.state())
        print()

    print("pinned local package survived every round:",
          parse_instance("mirror(localpkg, dev)").contains_instance(pinned))


if __name__ == "__main__":
    main()
