"""Root pytest configuration: gate the pytest-timeout dependency.

``setup.cfg`` sets ``timeout = 120`` so every test gets a wall-clock
ceiling when the ``pytest-timeout`` plugin (declared in the ``test``
extras) is installed.  Offline environments that cannot install the
plugin would otherwise emit an "unknown config option" warning for that
line; registering the ini key here — only when the plugin is absent —
keeps the suite warning-free in both worlds without making the plugin a
hard dependency.
"""

from __future__ import annotations


def pytest_addoption(parser):
    try:
        import pytest_timeout  # noqa: F401 - probing for the plugin
    except ImportError:
        parser.addini(
            "timeout",
            "per-test timeout in seconds (no-op: pytest-timeout not installed)",
            default=None,
        )
